// Package profile implements ap-detect's data analyser (paper §4.2):
// it samples table contents and computes per-column statistics and
// format inferences that the data rules consume — delimiter-separated
// lists (multi-valued attribute), numbers stored as text (incorrect
// data type), timestamps without time zones, derived and redundant
// columns, functional dependencies (denormalization), and
// plaintext-password heuristics.
//
// The profiler is the hottest analysis path in the system, so it is
// built as a single streaming pass over Table.ScanReadOnly: sampled
// rows are never cloned (stored Rows are immutable by construction),
// every cell is rendered to its string/float forms exactly once into
// pooled per-column scratch, and format classification runs through
// the byte-level scanners in classify.go instead of regexps. The
// cross-column passes (functional dependencies, derivations) then
// reuse those renderings instead of re-stringifying every value per
// column pair. Output is byte-identical to the straightforward
// implementation — pinned by the reference-implementation equivalence
// test and the repo's golden corpus — which is what makes profiles
// safe to memoize across requests.
package profile

import (
	"context"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// Options configures sampling and rule thresholds (paper: "ap-detect
// allows the developer to configure the tuple sampling frequency and
// the thresholds associated with activating data rules").
type Options struct {
	// SampleSize is the reservoir size per table (default 1000).
	SampleSize int
	// Seed makes sampling deterministic.
	Seed uint64
	// FormatThreshold is the fraction of sampled non-null values that
	// must match a format for it to be inferred (default 0.9).
	FormatThreshold float64
	// DelimiterThreshold is the fraction of values that must look like
	// delimiter-separated lists for the MVA data rule (default 0.6).
	DelimiterThreshold float64
	// EnumDistinctRatio is the distinct/rows ratio below which a
	// string column looks like an enumeration (default 0.01, with an
	// absolute distinct cap).
	EnumDistinctRatio float64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.SampleSize == 0 {
		o.SampleSize = 1000
	}
	if o.Seed == 0 {
		o.Seed = 0xdb5eed
	}
	if o.FormatThreshold == 0 {
		o.FormatThreshold = 0.9
	}
	if o.DelimiterThreshold == 0 {
		o.DelimiterThreshold = 0.6
	}
	if o.EnumDistinctRatio == 0 {
		o.EnumDistinctRatio = 0.01
	}
	return o
}

// Normalized returns the options with every zero field replaced by
// its default — the canonical form under which two configurations
// produce identical profiles. Options is comparable, so a normalized
// value is directly usable as (part of) a memoization key: zero-valued
// and explicitly-default options share cache entries.
func (o Options) Normalized() Options { return o.withDefaults() }

// ColumnProfile holds statistics for one column computed over the
// sample.
type ColumnProfile struct {
	Name  string
	Class schema.TypeClass

	Rows     int // sampled rows
	Nulls    int
	Distinct int
	// TopValue is the most frequent non-null value and TopFreq its
	// sample frequency.
	TopValue string
	TopFreq  int

	// Numeric stats (over values that coerce to numbers).
	NumericCount int
	Min, Max     float64
	Mean         float64
	Median       float64

	// String format counters (over non-null string renderings).
	IntLike      int
	FloatLike    int
	DateLike     int
	DateTimeNoTZ int
	DateTimeTZ   int
	PathLike     int
	EmailLike    int
	DelimList    int // looks like a delimiter-separated value list
	AvgLen       float64
	PlainTextish int // short, unhashed-looking strings (password rule)
}

// NonNull returns the number of non-null sampled values.
func (c *ColumnProfile) NonNull() int { return c.Rows - c.Nulls }

// DistinctRatio returns distinct/non-null (1.0 when empty).
func (c *ColumnProfile) DistinctRatio() float64 {
	if c.NonNull() == 0 {
		return 1
	}
	return float64(c.Distinct) / float64(c.NonNull())
}

// FracOf returns count/non-null as a fraction.
func (c *ColumnProfile) FracOf(count int) float64 {
	if c.NonNull() == 0 {
		return 0
	}
	return float64(count) / float64(c.NonNull())
}

// TableProfile aggregates the column profiles of one table plus
// cross-column findings. Profiles are immutable once built — every
// consumer (data rules, ranking, fixes) only reads them — which is
// what allows one profile to be shared by concurrent workloads and
// memoized across requests.
type TableProfile struct {
	Table       string
	RowsSampled int
	TotalRows   int
	Columns     []*ColumnProfile
	// FDs lists observed functional dependencies A -> B between
	// non-key columns with substantial value repetition (the
	// denormalized-table signal).
	FDs []FunctionalDependency
	// Derivations lists detected derived-column relationships
	// (information duplication), e.g. "age derived from birth_year".
	Derivations []Derivation
	opts        Options
}

// FunctionalDependency records that in the sample, each value of From
// determined exactly one value of To, while From is not unique.
type FunctionalDependency struct {
	From, To string
	// Repetition is the average number of rows per distinct From
	// value; higher means more duplication.
	Repetition float64
}

// Derivation records that To appears computable from From.
type Derivation struct {
	From, To string
	// Kind is "year-of", "age-of", "case-copy", "copy", "concat".
	Kind string
}

// Column returns the profile of the named column, or nil.
func (tp *TableProfile) Column(name string) *ColumnProfile {
	for _, c := range tp.Columns {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// Options returns the options the profile was built with.
func (tp *TableProfile) Options() Options { return tp.opts }

// Per-entry size model for MemSize: struct footprints rounded up to
// cover allocator and pointer overhead. Like the parse cache's cost
// model, it only needs to be proportional — it decides how many
// profiles fit a byte budget, not an allocator ledger.
const (
	tableProfileBase  = 160
	columnProfileBase = 208
	fdBase            = 56
	derivationBase    = 72
)

// MemSize estimates the profile's resident bytes — the cost a
// byte-bounded profile cache charges for keeping it.
func (tp *TableProfile) MemSize() int64 {
	n := int64(tableProfileBase + len(tp.Table))
	for _, c := range tp.Columns {
		n += columnProfileBase + int64(len(c.Name)+len(c.TopValue))
	}
	for _, fd := range tp.FDs {
		n += fdBase + int64(len(fd.From)+len(fd.To))
	}
	for _, d := range tp.Derivations {
		n += derivationBase + int64(len(d.From)+len(d.To)+len(d.Kind))
	}
	return n
}

// Reference format definitions. The hot path classifies through the
// equivalent byte-level scanners in classify.go (verified against
// these by TestClassifierEquivalence); rePath is still matched at
// runtime behind a cheap necessary-condition pre-check, the rest are
// retained as the executable specification.
var (
	reInt        = regexp.MustCompile(`^\s*-?\d+\s*$`)
	reFloat      = regexp.MustCompile(`^\s*-?\d+\.\d+([eE][-+]?\d+)?\s*$`)
	reDate       = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)
	reDateTime   = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}(:\d{2})?(\.\d+)?$`)
	reDateTimeTZ = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}(:\d{2})?(\.\d+)?\s*([zZ]|[-+]\d{2}:?\d{2})$`)
	rePath       = regexp.MustCompile(`^(/|[A-Za-z]:\\|\./|\.\./).+|^[\w./-]+\.(jpg|jpeg|png|gif|pdf|doc|docx|csv|txt|mp4|zip)$`)
	reEmail      = regexp.MustCompile(`^[^@\s]+@[^@\s]+\.[^@\s]+$`)
	reHexish     = regexp.MustCompile(`^[0-9a-fA-F$./=+]{20,}$`)
)

// cancelCheckRows is how many scanned rows pass between context
// checks during sampling; small enough that canceling a request stops
// a large-table profile promptly, large enough that the check is
// noise against per-row work.
const cancelCheckRows = 1024

// Sample draws a deterministic reservoir sample of row values from a
// table. The returned rows are copies, safe to hold and mutate.
func Sample(t *storage.Table, opts Options) []storage.Row {
	rows, _ := sampleContext(context.Background(), t, opts)
	return rows
}

// sampleContext is Sample with cancellation: the full-table scan
// behind the reservoir checks ctx every cancelCheckRows rows and
// stops early with ctx.Err() when canceled. The profiler does not run
// through this (it streams renderings instead of materializing rows)
// but follows the identical reservoir schedule, so for one seed both
// observe the same sampled row set.
func sampleContext(ctx context.Context, t *storage.Table, opts Options) ([]storage.Row, error) {
	opts = opts.withDefaults()
	r := xrand.New(opts.Seed)
	var reservoir []storage.Row
	n := 0
	// ScanReadOnly: profiling is analysis, not a measured workload
	// query — it must not charge the cost model or mutate buffer-pool
	// state, and the engine profiles tables concurrently.
	t.ScanReadOnly(func(id int64, row storage.Row) bool {
		n++
		if n%cancelCheckRows == 0 && ctx.Err() != nil {
			return false
		}
		if len(reservoir) < opts.SampleSize {
			reservoir = append(reservoir, row.Clone())
			return true
		}
		if j := r.Intn(n); j < opts.SampleSize {
			reservoir[j] = row.Clone()
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reservoir, nil
}

// cell is one sampled value rendered exactly once: the display string
// (shared with the stored Value when it already is a string), the
// numeric coercion, and the type tags the statistics and cross-column
// passes consume. Rendering per cell instead of per use is the
// profiler's main allocation win — the FD and derivation passes used
// to re-stringify every value once per column pair.
type cell struct {
	s     string
	f     float64
	kind  storage.ValueKind
	isNum bool // numeric coercion succeeded (Value.AsFloat semantics)
	tz    bool // KindTime with a known zone
}

// renderCell converts a stored value into its profiled forms. For
// strings, the float coercion is attempted only when a digit is
// present: every finite decimal or hex rendering contains one, and
// the digit-free strings AsFloat would accept ("Inf", "NaN") cannot
// influence any profiled statistic — strings only count as numeric
// when they match the int/float formats (which require digits), and
// the derivation pass's year arithmetic is never satisfied by
// non-finite values.
func renderCell(v storage.Value) cell {
	c := cell{kind: v.Kind, tz: v.TZKnown}
	if v.Kind == storage.KindNull {
		return c
	}
	c.s = v.String()
	switch v.Kind {
	case storage.KindInt:
		c.f, c.isNum = float64(v.I), true
	case storage.KindFloat:
		c.f, c.isNum = v.F, true
	case storage.KindBool:
		if v.B {
			c.f = 1
		}
		c.isNum = true
	case storage.KindTime:
		c.f, c.isNum = float64(v.I), true
	case storage.KindString:
		if hasDigit(c.s) {
			if f, err := strconv.ParseFloat(strings.TrimSpace(c.s), 64); err == nil {
				c.f, c.isNum = f, true
			}
		}
	}
	return c
}

// scratch is the reusable per-profile working state: one cell slice
// per column (indexed by reservoir slot), a frequency map shared by
// the sequential per-column stats passes, the FD pair map, and the
// numeric sort buffer. Pooled so that profiling N tables — the
// engine's per-table fan-out — allocates scratch O(pool) times, not
// O(tables), and concurrent profiles never contend on shared state.
type scratch struct {
	cols [][]cell
	freq map[string]int
	fd   map[string]string
	nums []float64
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// columns returns n empty cell slices, reusing grown capacity.
func (sc *scratch) columns(n int) [][]cell {
	for len(sc.cols) < n {
		sc.cols = append(sc.cols, nil)
	}
	cols := sc.cols[:n]
	for i := range cols {
		cols[i] = cols[i][:0]
	}
	return cols
}

// release zeroes retained cells and map entries (they hold strings
// referencing table data, which must not outlive the profile call in
// the pool) and returns the scratch.
func (sc *scratch) release() {
	for i := range sc.cols {
		clear(sc.cols[i])
	}
	clear(sc.freq)
	clear(sc.fd)
	scratchPool.Put(sc)
}

// ProfileTable profiles one storage table.
func ProfileTable(t *storage.Table, opts Options) *TableProfile {
	tp, _ := ProfileTableContext(context.Background(), t, opts)
	return tp
}

// ProfileTableContext is ProfileTable with cancellation: the sampling
// scan checks ctx periodically, and the function returns ctx.Err()
// (and no profile) when the context is canceled mid-profile. With an
// uncanceled context the result is identical to ProfileTable.
//
// The whole profile is one streaming pass over ScanReadOnly: the
// reservoir holds rendered cells, not cloned rows (stored Rows are
// immutable — DML always replaces whole rows — so nothing needs
// copying), and every downstream statistic reads the renderings.
func ProfileTableContext(ctx context.Context, t *storage.Table, opts Options) (*TableProfile, error) {
	opts = opts.withDefaults()
	ncols := len(t.Cols)
	sc := scratchPool.Get().(*scratch)
	defer sc.release()
	cols := sc.columns(ncols)

	// Reservoir sampling on the identical schedule as sampleContext
	// (same seed ⇒ same sampled row set), rendering each admitted
	// row's cells in place of cloning it. A replaced slot's renderings
	// are simply overwritten.
	r := xrand.New(opts.Seed)
	sampled, n := 0, 0
	t.ScanReadOnly(func(id int64, row storage.Row) bool {
		n++
		if n%cancelCheckRows == 0 && ctx.Err() != nil {
			return false
		}
		if sampled < opts.SampleSize {
			for i := range cols {
				cols[i] = append(cols[i], renderCell(row[i]))
			}
			sampled++
			return true
		}
		if j := r.Intn(n); j < opts.SampleSize {
			for i := range cols {
				cols[i][j] = renderCell(row[i])
			}
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	tp := &TableProfile{Table: t.Name, RowsSampled: sampled, TotalRows: t.Len(), opts: opts}
	tp.Columns = make([]*ColumnProfile, ncols)
	for i, cd := range t.Cols {
		cp := &ColumnProfile{Name: cd.Name, Class: cd.Class}
		tp.Columns[i] = cp
		sc.columnStats(cp, cols[i])
	}

	// The cross-column passes below run over the bounded sample, but
	// on wide tables they are quadratic in columns — re-check before
	// each so cancellation stays prompt end to end.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tp.findFDs(cols, sc.fdMap())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tp.findDerivations(cols)
	return tp, nil
}

// freqMap returns the cleared shared frequency map.
func (sc *scratch) freqMap() map[string]int {
	if sc.freq == nil {
		sc.freq = make(map[string]int)
	} else {
		clear(sc.freq)
	}
	return sc.freq
}

// fdMap returns the shared (cleared-per-pair) FD mapping.
func (sc *scratch) fdMap() map[string]string {
	if sc.fd == nil {
		sc.fd = make(map[string]string)
	}
	return sc.fd
}

// columnStats computes one column's profile from its rendered cells.
// Cells are visited in reservoir-slot order — the same order the row
// loop observed them — so float accumulation order (and therefore
// Mean, bit for bit) matches the reference implementation.
func (sc *scratch) columnStats(cp *ColumnProfile, cells []cell) {
	freq := sc.freqMap()
	nums := sc.nums[:0]
	sumLen, strSeen := 0, 0
	for i := range cells {
		c := &cells[i]
		cp.Rows++
		if c.kind == storage.KindNull {
			cp.Nulls++
			continue
		}
		freq[c.s]++
		var isInt, isFloat bool
		if c.kind == storage.KindString {
			// The two formats are disjoint (one forbids '.', the other
			// requires it), so each cell is scanned at most twice here
			// and the results serve both the numeric-coercion test and
			// the format cascade below.
			isInt = intLike(c.s)
			isFloat = !isInt && floatLike(c.s)
		}
		if c.isNum && (c.kind == storage.KindInt || c.kind == storage.KindFloat ||
			c.kind == storage.KindString && (isInt || isFloat)) {
			cp.NumericCount++
			nums = append(nums, c.f)
		}
		if c.kind == storage.KindString {
			strSeen++
			sumLen += len(c.s)
			switch {
			case isInt:
				cp.IntLike++
			case isFloat:
				cp.FloatLike++
			case dateTimeTZLike(c.s):
				cp.DateTimeTZ++
			case dateTimeNoTZLike(c.s):
				cp.DateTimeNoTZ++
			case dateLike(c.s):
				cp.DateLike++
			case emailLike(c.s):
				cp.EmailLike++
			case pathLike(c.s):
				cp.PathLike++
			}
			if delimListLike(c.s) {
				cp.DelimList++
			}
			// "Short and unhashed-looking": the hashed-value format
			// (reHexish) requires at least 20 characters, so under the
			// 20-byte cap the length test alone decides.
			if len(c.s) > 0 && len(c.s) < 20 {
				cp.PlainTextish++
			}
		}
		if c.kind == storage.KindTime && !c.tz {
			cp.DateTimeNoTZ++
		}
		if c.kind == storage.KindTime && c.tz {
			cp.DateTimeTZ++
		}
	}
	cp.Distinct = len(freq)
	for v, n := range freq {
		if n > cp.TopFreq || (n == cp.TopFreq && v < cp.TopValue) {
			cp.TopValue, cp.TopFreq = v, n
		}
	}
	if strSeen > 0 {
		cp.AvgLen = float64(sumLen) / float64(strSeen)
	}
	if len(nums) > 0 {
		sort.Float64s(nums)
		cp.Min, cp.Max = nums[0], nums[len(nums)-1]
		var sum float64
		for _, f := range nums {
			sum += f
		}
		cp.Mean = sum / float64(len(nums))
		cp.Median = nums[len(nums)/2]
	}
	sc.nums = nums[:0] // keep grown capacity for the next column
}

// ProfileDatabase profiles every table.
func ProfileDatabase(db *storage.Database, opts Options) map[string]*TableProfile {
	out := make(map[string]*TableProfile)
	for _, t := range db.Tables() {
		out[strings.ToLower(t.Name)] = ProfileTable(t, opts)
	}
	return out
}

// findFDs detects non-trivial functional dependencies between
// non-unique columns — the signature of a denormalized table. mapping
// is caller-provided scratch, cleared per pair.
func (tp *TableProfile) findFDs(cols [][]cell, mapping map[string]string) {
	if tp.RowsSampled < 10 {
		return
	}
	n := len(tp.Columns)
	for a := 0; a < n; a++ {
		ca := tp.Columns[a]
		// From-column must repeat (not unique) and have a real domain.
		if ca.Distinct < 2 || ca.DistinctRatio() > 0.5 {
			continue
		}
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			cb := tp.Columns[b]
			if cb.Distinct < 2 {
				continue // constant columns are the redundant-column rule's business
			}
			clear(mapping)
			fd := true
			colA, colB := cols[a], cols[b]
			for r := range colA {
				va, vb := &colA[r], &colB[r]
				if va.kind == storage.KindNull || vb.kind == storage.KindNull {
					continue
				}
				if prev, ok := mapping[va.s]; ok {
					if prev != vb.s {
						fd = false
						break
					}
				} else {
					mapping[va.s] = vb.s
				}
			}
			// Require the dependency to be non-trivial: B must vary
			// with A (not constant) and A repeats enough that B values
			// are materially duplicated.
			if fd && len(mapping) >= 2 && cb.Distinct <= ca.Distinct {
				rep := float64(ca.NonNull()) / float64(ca.Distinct)
				if rep >= 2 {
					tp.FDs = append(tp.FDs, FunctionalDependency{
						From: ca.Name, To: cb.Name, Repetition: rep,
					})
				}
			}
		}
	}
}

// findDerivations detects derived columns (information duplication).
func (tp *TableProfile) findDerivations(cols [][]cell) {
	if tp.RowsSampled < 5 {
		return
	}
	n := len(tp.Columns)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			kind := detectDerivation(cols[a], cols[b])
			if kind != "" {
				tp.Derivations = append(tp.Derivations, Derivation{
					From: tp.Columns[a].Name, To: tp.Columns[b].Name, Kind: kind,
				})
			}
		}
	}
}

func detectDerivation(colA, colB []cell) string {
	const currentYear = 2020 // the paper's evaluation year; only used for age-of heuristics
	checked := 0
	copies, caseCopies, years, ages := 0, 0, 0, 0
	for r := range colA {
		va, vb := &colA[r], &colB[r]
		if va.kind == storage.KindNull || vb.kind == storage.KindNull {
			continue
		}
		checked++
		sa, sb := va.s, vb.s
		if sa == sb {
			copies++
		}
		if !strings.EqualFold(sa, sb) {
			// fallthrough
		} else if sa != sb {
			caseCopies++
		}
		// year extraction from a date: "1987-03-01" -> "1987".
		if len(sa) >= 4 && (dateLike(sa) || dateTimeNoTZLike(sa)) && sb == sa[:4] {
			years++
		}
		// age from year of birth.
		if va.isNum && vb.isNum {
			if va.f > 1900 && va.f < float64(currentYear) && vb.f == float64(currentYear)-va.f {
				ages++
			}
		}
	}
	if checked < 5 {
		return ""
	}
	frac := func(n int) float64 { return float64(n) / float64(checked) }
	switch {
	case frac(copies) >= 0.95:
		return "copy"
	case frac(caseCopies) >= 0.95:
		return "case-copy"
	case frac(years) >= 0.95:
		return "year-of"
	case frac(ages) >= 0.95:
		return "age-of"
	default:
		return ""
	}
}
