package profile

// Byte-level string classifiers for the profiling hot path. Each
// sampled cell used to pass through a cascade of regexp matches; on
// the 16-table bench fixture that cascade (plus re-rendering values
// per cross-column pass) dominated the data phase. The classifiers
// here are hand-rolled scanners exactly equivalent to the reference
// regexes kept in profile.go — TestClassifierEquivalence exercises
// the pair on adversarial and randomized inputs — so the profiler can
// classify without regexp machinery while producing byte-identical
// profiles.
//
// Equivalence notes: RE2's \s is exactly [\t\n\f\r ] and \d is [0-9],
// both ASCII-only, and every pattern is anchored with ASCII-only
// classes, so byte scanning matches rune scanning (multi-byte runes
// can never satisfy a digit/space/punctuation position). The optional
// groups ((:\d{2})?, (\.\d+)?, ([eE]…)?) never create real
// backtracking choices because the text following each group cannot
// start with the group's first byte.

import "strings"

// isSpaceByte reports RE2 \s membership: [\t\n\f\r ].
func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\f' || c == '\r'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if isDigit(s[i]) {
			return true
		}
	}
	return false
}

// intLike is reInt: ^\s*-?\d+\s*$
func intLike(s string) bool {
	i, n := 0, len(s)
	for i < n && isSpaceByte(s[i]) {
		i++
	}
	if i < n && s[i] == '-' {
		i++
	}
	start := i
	for i < n && isDigit(s[i]) {
		i++
	}
	if i == start {
		return false
	}
	for i < n && isSpaceByte(s[i]) {
		i++
	}
	return i == n
}

// floatLike is reFloat: ^\s*-?\d+\.\d+([eE][-+]?\d+)?\s*$
func floatLike(s string) bool {
	i, n := 0, len(s)
	for i < n && isSpaceByte(s[i]) {
		i++
	}
	if i < n && s[i] == '-' {
		i++
	}
	start := i
	for i < n && isDigit(s[i]) {
		i++
	}
	if i == start || i >= n || s[i] != '.' {
		return false
	}
	i++
	start = i
	for i < n && isDigit(s[i]) {
		i++
	}
	if i == start {
		return false
	}
	if i < n && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < n && (s[i] == '+' || s[i] == '-') {
			i++
		}
		start = i
		for i < n && isDigit(s[i]) {
			i++
		}
		if i == start {
			return false
		}
	}
	for i < n && isSpaceByte(s[i]) {
		i++
	}
	return i == n
}

// datePrefix reports whether s starts with \d{4}-\d{2}-\d{2}; the
// caller guarantees len(s) >= 10.
func datePrefix(s string) bool {
	return isDigit(s[0]) && isDigit(s[1]) && isDigit(s[2]) && isDigit(s[3]) &&
		s[4] == '-' && isDigit(s[5]) && isDigit(s[6]) &&
		s[7] == '-' && isDigit(s[8]) && isDigit(s[9])
}

// dateLike is reDate: ^\d{4}-\d{2}-\d{2}$
func dateLike(s string) bool {
	return len(s) == 10 && datePrefix(s)
}

// timeOfDayTail scans \d{2}:\d{2}(:\d{2})?(\.\d+)? starting at i and
// returns the index just past it, or -1 when the mandatory HH:MM part
// is absent. The optional groups are unambiguous: nothing that may
// follow them starts with ':' or '.'.
func timeOfDayTail(s string, i int) int {
	n := len(s)
	if i+5 > n || !isDigit(s[i]) || !isDigit(s[i+1]) || s[i+2] != ':' ||
		!isDigit(s[i+3]) || !isDigit(s[i+4]) {
		return -1
	}
	i += 5
	if i+3 <= n && s[i] == ':' && isDigit(s[i+1]) && isDigit(s[i+2]) {
		i += 3
	}
	if i+2 <= n && s[i] == '.' && isDigit(s[i+1]) {
		i += 2
		for i < n && isDigit(s[i]) {
			i++
		}
	}
	return i
}

// dateTimeNoTZLike is reDateTime:
// ^\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}(:\d{2})?(\.\d+)?$
func dateTimeNoTZLike(s string) bool {
	if len(s) < 16 || !datePrefix(s) || (s[10] != ' ' && s[10] != 'T') {
		return false
	}
	return timeOfDayTail(s, 11) == len(s)
}

// dateTimeTZLike is reDateTimeTZ:
// ^\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}(:\d{2})?(\.\d+)?\s*([zZ]|[-+]\d{2}:?\d{2})$
func dateTimeTZLike(s string) bool {
	n := len(s)
	if n < 17 || !datePrefix(s) || (s[10] != ' ' && s[10] != 'T') {
		return false
	}
	i := timeOfDayTail(s, 11)
	if i < 0 {
		return false
	}
	for i < n && isSpaceByte(s[i]) {
		i++
	}
	if i >= n {
		return false
	}
	switch s[i] {
	case 'z', 'Z':
		return i+1 == n
	case '+', '-':
		i++
		if i+2 > n || !isDigit(s[i]) || !isDigit(s[i+1]) {
			return false
		}
		i += 2
		if i < n && s[i] == ':' {
			i++
		}
		return i+2 == n && isDigit(s[i]) && isDigit(s[i+1])
	}
	return false
}

// emailLike is reEmail: ^[^@\s]+@[^@\s]+\.[^@\s]+$ — exactly one '@'
// with a non-empty local part, no whitespace anywhere, and a '.' in
// the interior of the domain part ('.' itself is a legal class
// member, so only the dot's position matters).
func emailLike(s string) bool {
	at := strings.IndexByte(s, '@')
	if at <= 0 {
		return false
	}
	rest := s[at+1:]
	if len(rest) < 3 || strings.IndexByte(rest, '@') >= 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if isSpaceByte(s[i]) {
			return false
		}
	}
	return strings.IndexByte(rest[1:len(rest)-1], '.') >= 0
}

// pathLike gates rePath (a genuinely irregular alternation) behind a
// necessary-condition byte scan: both alternatives require a '/',
// '\', or '.' somewhere in the string, and nearly no sampled string
// contains one.
func pathLike(s string) bool {
	if strings.IndexByte(s, '/') < 0 && strings.IndexByte(s, '\\') < 0 &&
		strings.IndexByte(s, '.') < 0 {
		return false
	}
	return rePath.MatchString(s)
}

// delimiters tried by delimListLike, in the original match order.
var listDelims = [...]string{",", ";", "|"}

// delimListLike reports whether a string looks like a
// delimiter-separated list of short tokens (the MVA signature). This
// is the allocation-free form of the original strings.Split loop:
// parts are walked as substrings of s, never materialized.
func delimListLike(s string) bool {
	for _, d := range listDelims {
		parts := strings.Count(s, d) + 1
		if parts < 2 {
			continue
		}
		ok := 0
		rest := s
		for {
			i := strings.Index(rest, d)
			p := rest
			if i >= 0 {
				p = rest[:i]
			}
			p = strings.TrimSpace(p)
			// Tokens should be short identifiers, not prose.
			if p != "" && len(p) <= 24 && !strings.Contains(p, " ") {
				ok++
			}
			if i < 0 {
				break
			}
			rest = rest[i+len(d):]
		}
		if ok >= 2 && float64(ok) >= 0.8*float64(parts) {
			return true
		}
	}
	return false
}
