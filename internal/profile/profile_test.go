package profile

import (
	"context"
	"fmt"
	"testing"

	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
)

func tbl(name string, cols ...storage.ColumnDef) (*storage.Database, *storage.Table) {
	db := storage.NewDatabase("p")
	return db, db.CreateTable(name, cols)
}

func TestBasicStats(t *testing.T) {
	_, tab := tbl("t",
		storage.ColumnDef{Name: "n", Class: schema.ClassInteger},
		storage.ColumnDef{Name: "s", Class: schema.ClassChar})
	for i := 0; i < 100; i++ {
		var s storage.Value
		if i%10 == 0 {
			s = storage.Null()
		} else {
			s = storage.Str(fmt.Sprintf("v%d", i%3))
		}
		tab.MustInsert(storage.Int(int64(i)), s)
	}
	tp := ProfileTable(tab, Options{})
	cn := tp.Column("n")
	if cn.Rows != 100 || cn.Nulls != 0 || cn.Distinct != 100 {
		t.Errorf("n profile = %+v", cn)
	}
	if cn.Min != 0 || cn.Max != 99 || cn.Mean != 49.5 {
		t.Errorf("n stats = min %v max %v mean %v", cn.Min, cn.Max, cn.Mean)
	}
	cs := tp.Column("s")
	if cs.Nulls != 10 || cs.Distinct != 3 {
		t.Errorf("s profile = %+v", cs)
	}
	if cs.DistinctRatio() > 0.05 {
		t.Errorf("distinct ratio = %v", cs.DistinctRatio())
	}
	if cs.TopFreq < 30 {
		t.Errorf("top freq = %d", cs.TopFreq)
	}
}

func TestReservoirSampleDeterministicAndBounded(t *testing.T) {
	_, tab := tbl("t", storage.ColumnDef{Name: "v", Class: schema.ClassInteger})
	for i := 0; i < 5000; i++ {
		tab.MustInsert(storage.Int(int64(i)))
	}
	s1 := Sample(tab, Options{SampleSize: 100, Seed: 7})
	s2 := Sample(tab, Options{SampleSize: 100, Seed: 7})
	if len(s1) != 100 || len(s2) != 100 {
		t.Fatalf("sample sizes = %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i][0].I != s2[i][0].I {
			t.Fatal("sampling not deterministic")
		}
	}
	s3 := Sample(tab, Options{SampleSize: 100, Seed: 8})
	same := true
	for i := range s1 {
		if s1[i][0].I != s3[i][0].I {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestDelimiterListDetection(t *testing.T) {
	_, tab := tbl("tenants", storage.ColumnDef{Name: "user_ids", Class: schema.ClassText})
	for i := 0; i < 50; i++ {
		tab.MustInsert(storage.Str(fmt.Sprintf("U%d,U%d,U%d", i, i+1, i+2)))
	}
	tp := ProfileTable(tab, Options{})
	c := tp.Column("user_ids")
	if got := c.FracOf(c.DelimList); got < 0.9 {
		t.Errorf("delim fraction = %v", got)
	}
	// Prose with commas must not count.
	_, tab2 := tbl("posts", storage.ColumnDef{Name: "body", Class: schema.ClassText})
	for i := 0; i < 50; i++ {
		tab2.MustInsert(storage.Str("Hello there, this is a long sentence, with clauses"))
	}
	tp2 := ProfileTable(tab2, Options{})
	c2 := tp2.Column("body")
	if got := c2.FracOf(c2.DelimList); got > 0.2 {
		t.Errorf("prose flagged as delimiter list: %v", got)
	}
}

func TestFormatInference(t *testing.T) {
	_, tab := tbl("f",
		storage.ColumnDef{Name: "num_text", Class: schema.ClassText},
		storage.ColumnDef{Name: "dt_notz", Class: schema.ClassText},
		storage.ColumnDef{Name: "dt_tz", Class: schema.ClassText},
		storage.ColumnDef{Name: "path", Class: schema.ClassText},
		storage.ColumnDef{Name: "email", Class: schema.ClassText})
	for i := 0; i < 40; i++ {
		tab.MustInsert(
			storage.Str(fmt.Sprintf("%d", i*7)),
			storage.Str(fmt.Sprintf("2020-01-%02d 10:3%d:00", i%28+1, i%10)),
			storage.Str(fmt.Sprintf("2020-01-%02d 10:30:00+02:00", i%28+1)),
			storage.Str(fmt.Sprintf("/var/files/doc%d.pdf", i)),
			storage.Str(fmt.Sprintf("user%d@example.com", i)),
		)
	}
	tp := ProfileTable(tab, Options{})
	checks := []struct {
		col  string
		frac func(c *ColumnProfile) int
	}{
		{"num_text", func(c *ColumnProfile) int { return c.IntLike }},
		{"dt_notz", func(c *ColumnProfile) int { return c.DateTimeNoTZ }},
		{"dt_tz", func(c *ColumnProfile) int { return c.DateTimeTZ }},
		{"path", func(c *ColumnProfile) int { return c.PathLike }},
		{"email", func(c *ColumnProfile) int { return c.EmailLike }},
	}
	for _, ch := range checks {
		c := tp.Column(ch.col)
		if got := c.FracOf(ch.frac(c)); got < 0.9 {
			t.Errorf("%s inferred fraction = %v, want >= 0.9", ch.col, got)
		}
	}
}

func TestFunctionalDependencyDetection(t *testing.T) {
	// city -> zip duplication across many rows: denormalized.
	_, tab := tbl("addr",
		storage.ColumnDef{Name: "id", Class: schema.ClassInteger},
		storage.ColumnDef{Name: "city", Class: schema.ClassChar},
		storage.ColumnDef{Name: "zip", Class: schema.ClassChar})
	cities := []string{"Rome", "Oslo", "Lima"}
	zips := []string{"00100", "0150", "15001"}
	for i := 0; i < 90; i++ {
		tab.MustInsert(storage.Int(int64(i)), storage.Str(cities[i%3]), storage.Str(zips[i%3]))
	}
	tp := ProfileTable(tab, Options{})
	found := false
	for _, fd := range tp.FDs {
		if fd.From == "city" && fd.To == "zip" {
			found = true
			if fd.Repetition < 10 {
				t.Errorf("repetition = %v", fd.Repetition)
			}
		}
		if fd.From == "id" {
			t.Errorf("unique column reported as FD source: %+v", fd)
		}
	}
	if !found {
		t.Errorf("city->zip FD not found: %+v", tp.FDs)
	}
}

func TestNoFDOnIndependentColumns(t *testing.T) {
	_, tab := tbl("ind",
		storage.ColumnDef{Name: "a", Class: schema.ClassChar},
		storage.ColumnDef{Name: "b", Class: schema.ClassInteger})
	for i := 0; i < 80; i++ {
		tab.MustInsert(storage.Str(fmt.Sprintf("g%d", i%4)), storage.Int(int64(i)))
	}
	tp := ProfileTable(tab, Options{})
	for _, fd := range tp.FDs {
		if fd.From == "a" && fd.To == "b" {
			t.Errorf("spurious FD: %+v", fd)
		}
	}
}

func TestDerivationDetection(t *testing.T) {
	_, tab := tbl("people",
		storage.ColumnDef{Name: "dob", Class: schema.ClassChar},
		storage.ColumnDef{Name: "birth_year", Class: schema.ClassChar},
		storage.ColumnDef{Name: "yob", Class: schema.ClassInteger},
		storage.ColumnDef{Name: "age", Class: schema.ClassInteger})
	for i := 0; i < 30; i++ {
		year := 1960 + i
		tab.MustInsert(
			storage.Str(fmt.Sprintf("%d-06-15", year)),
			storage.Str(fmt.Sprintf("%d", year)),
			storage.Int(int64(year)),
			storage.Int(int64(2020-year)),
		)
	}
	tp := ProfileTable(tab, Options{})
	var kinds []string
	for _, d := range tp.Derivations {
		kinds = append(kinds, d.From+"->"+d.To+":"+d.Kind)
	}
	want := map[string]bool{}
	for _, d := range tp.Derivations {
		want[d.Kind] = true
	}
	if !want["year-of"] {
		t.Errorf("year-of derivation missed: %v", kinds)
	}
	if !want["age-of"] {
		t.Errorf("age-of derivation missed: %v", kinds)
	}
}

func TestCopyDerivation(t *testing.T) {
	_, tab := tbl("c",
		storage.ColumnDef{Name: "a", Class: schema.ClassChar},
		storage.ColumnDef{Name: "b", Class: schema.ClassChar})
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("val%d", i)
		tab.MustInsert(storage.Str(v), storage.Str(v))
	}
	tp := ProfileTable(tab, Options{})
	found := false
	for _, d := range tp.Derivations {
		if d.Kind == "copy" {
			found = true
		}
	}
	if !found {
		t.Errorf("copy derivation missed: %+v", tp.Derivations)
	}
}

func TestProfileDatabaseCoversAllTables(t *testing.T) {
	db := storage.NewDatabase("d")
	db.CreateTable("a", []storage.ColumnDef{{Name: "x", Class: schema.ClassInteger}})
	db.CreateTable("b", []storage.ColumnDef{{Name: "y", Class: schema.ClassChar}})
	profiles := ProfileDatabase(db, Options{})
	if len(profiles) != 2 || profiles["a"] == nil || profiles["b"] == nil {
		t.Errorf("profiles = %v", profiles)
	}
}

func TestEmptyTableProfile(t *testing.T) {
	_, tab := tbl("empty", storage.ColumnDef{Name: "x", Class: schema.ClassInteger})
	tp := ProfileTable(tab, Options{})
	c := tp.Column("x")
	if c.Rows != 0 || c.DistinctRatio() != 1 || c.FracOf(c.IntLike) != 0 {
		t.Errorf("empty profile = %+v", c)
	}
}

func TestTimeValuesTZCounting(t *testing.T) {
	_, tab := tbl("ev",
		storage.ColumnDef{Name: "at", Class: schema.ClassTimeNoTZ},
		storage.ColumnDef{Name: "at_tz", Class: schema.ClassTimeTZ})
	for i := 0; i < 10; i++ {
		tab.MustInsert(storage.Time(int64(i)*1e6), storage.TimeTZ(int64(i)*1e6, 120))
	}
	tp := ProfileTable(tab, Options{})
	if tp.Column("at").DateTimeNoTZ != 10 {
		t.Errorf("no-tz count = %d", tp.Column("at").DateTimeNoTZ)
	}
	if tp.Column("at_tz").DateTimeTZ != 10 {
		t.Errorf("tz count = %d", tp.Column("at_tz").DateTimeTZ)
	}
}

// countingCtx is a context whose Err flips to Canceled after a fixed
// number of Err calls — a deterministic stand-in for "the client went
// away mid-scan" that lets the test prove both the periodicity of the
// cancellation checks and the promptness of the stop without timing.
type countingCtx struct {
	context.Context
	calls    int
	cancelAt int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls >= c.cancelAt {
		return context.Canceled
	}
	return nil
}

// TestProfileTableContextCancelsMidScan: a profile of a large table
// must stop promptly when the context is canceled partway through the
// sampling scan, returning ctx.Err() and no profile.
func TestProfileTableContextCancelsMidScan(t *testing.T) {
	const rows = 100_000
	_, tab := tbl("big",
		storage.ColumnDef{Name: "id", Class: schema.ClassInteger},
		storage.ColumnDef{Name: "name", Class: schema.ClassChar})
	for i := 0; i < rows; i++ {
		tab.MustInsert(storage.Int(int64(i)), storage.Str(fmt.Sprintf("n%d", i)))
	}

	// Cancel on the third periodic check: the scan must abandon the
	// remaining ~97k rows rather than finish the pass.
	ctx := &countingCtx{Context: context.Background(), cancelAt: 3}
	tp, err := ProfileTableContext(ctx, tab, Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tp != nil {
		t.Fatalf("canceled profile returned a result: %+v", tp)
	}
	// The scan checks every cancelCheckRows rows; hitting cancelAt=3
	// after only a few checks proves it did not scan the whole table.
	if maxChecks := rows/cancelCheckRows + 4; ctx.calls > maxChecks {
		t.Errorf("Err() called %d times; cancellation checks not periodic?", ctx.calls)
	}
	if ctx.calls > 8 {
		t.Errorf("Err() called %d times after cancellation; scan did not stop promptly", ctx.calls)
	}

	// Sanity: the same profile with a live context completes.
	tp, err = ProfileTableContext(context.Background(), tab, Options{})
	if err != nil || tp == nil || tp.TotalRows != rows {
		t.Fatalf("uncanceled profile: tp=%v err=%v", tp, err)
	}
}
