package profile

// Byte-identical-output guarantees for the single-pass profiler. The
// reference implementation below is the original (pre-rewrite)
// ProfileTableContext, kept verbatim: clone-based reservoir, per-pass
// value re-rendering, regexp classification. The tests drive both
// implementations over adversarial and randomized tables and demand
// deeply equal profiles, and drive every hand-rolled classifier
// against its reference regex over adversarial and randomized
// strings. Together with the repo-level golden corpus this pins the
// rewrite's contract: same seed ⇒ same profile, bit for bit.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// --- reference implementation (original code, verbatim) -------------

func refDelimListLike(s string) bool {
	for _, d := range []string{",", ";", "|"} {
		parts := strings.Split(s, d)
		if len(parts) < 2 {
			continue
		}
		ok := 0
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if len(p) <= 24 && !strings.Contains(p, " ") {
				ok++
			}
		}
		if ok >= 2 && float64(ok) >= 0.8*float64(len(parts)) {
			return true
		}
	}
	return false
}

func referenceProfile(t *storage.Table, opts Options) *TableProfile {
	opts = opts.withDefaults()
	rows, _ := sampleContext(context.Background(), t, opts)
	tp := &TableProfile{Table: t.Name, RowsSampled: len(rows), TotalRows: t.Len(), opts: opts}

	type colState struct {
		freq    map[string]int
		nums    []float64
		sumLen  int
		strSeen int
	}
	states := make([]*colState, len(t.Cols))
	for i, cd := range t.Cols {
		states[i] = &colState{freq: map[string]int{}}
		tp.Columns = append(tp.Columns, &ColumnProfile{Name: cd.Name, Class: cd.Class})
	}

	for _, row := range rows {
		for i, v := range row {
			cp := tp.Columns[i]
			st := states[i]
			cp.Rows++
			if v.IsNull() {
				cp.Nulls++
				continue
			}
			s := v.String()
			st.freq[s]++
			if f, ok := v.AsFloat(); ok && (v.Kind == storage.KindInt || v.Kind == storage.KindFloat || v.Kind == storage.KindString && (reInt.MatchString(s) || reFloat.MatchString(s))) {
				cp.NumericCount++
				st.nums = append(st.nums, f)
			}
			if v.Kind == storage.KindString {
				st.strSeen++
				st.sumLen += len(s)
				switch {
				case reInt.MatchString(s):
					cp.IntLike++
				case reFloat.MatchString(s):
					cp.FloatLike++
				case reDateTimeTZ.MatchString(s):
					cp.DateTimeTZ++
				case reDateTime.MatchString(s):
					cp.DateTimeNoTZ++
				case reDate.MatchString(s):
					cp.DateLike++
				case reEmail.MatchString(s):
					cp.EmailLike++
				case rePath.MatchString(s):
					cp.PathLike++
				}
				if refDelimListLike(s) {
					cp.DelimList++
				}
				if len(s) > 0 && len(s) < 20 && !reHexish.MatchString(s) {
					cp.PlainTextish++
				}
			}
			if v.Kind == storage.KindTime && !v.TZKnown {
				cp.DateTimeNoTZ++
			}
			if v.Kind == storage.KindTime && v.TZKnown {
				cp.DateTimeTZ++
			}
		}
	}

	for i, cp := range tp.Columns {
		st := states[i]
		cp.Distinct = len(st.freq)
		for v, n := range st.freq {
			if n > cp.TopFreq || (n == cp.TopFreq && v < cp.TopValue) {
				cp.TopValue, cp.TopFreq = v, n
			}
		}
		if st.strSeen > 0 {
			cp.AvgLen = float64(st.sumLen) / float64(st.strSeen)
		}
		if len(st.nums) > 0 {
			sort.Float64s(st.nums)
			cp.Min, cp.Max = st.nums[0], st.nums[len(st.nums)-1]
			var sum float64
			for _, f := range st.nums {
				sum += f
			}
			cp.Mean = sum / float64(len(st.nums))
			cp.Median = st.nums[len(st.nums)/2]
		}
	}

	refFindFDs(tp, rows)
	refFindDerivations(tp, rows)
	return tp
}

func refFindFDs(tp *TableProfile, rows []storage.Row) {
	if len(rows) < 10 {
		return
	}
	n := len(tp.Columns)
	for a := 0; a < n; a++ {
		ca := tp.Columns[a]
		if ca.Distinct < 2 || ca.DistinctRatio() > 0.5 {
			continue
		}
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			cb := tp.Columns[b]
			if cb.Distinct < 2 {
				continue
			}
			mapping := map[string]string{}
			fd := true
			for _, row := range rows {
				va, vb := row[a], row[b]
				if va.IsNull() || vb.IsNull() {
					continue
				}
				ka, kb := va.String(), vb.String()
				if prev, ok := mapping[ka]; ok {
					if prev != kb {
						fd = false
						break
					}
				} else {
					mapping[ka] = kb
				}
			}
			if fd && len(mapping) >= 2 && cb.Distinct <= ca.Distinct {
				rep := float64(ca.NonNull()) / float64(ca.Distinct)
				if rep >= 2 {
					tp.FDs = append(tp.FDs, FunctionalDependency{
						From: ca.Name, To: cb.Name, Repetition: rep,
					})
				}
			}
		}
	}
}

func refFindDerivations(tp *TableProfile, rows []storage.Row) {
	if len(rows) < 5 {
		return
	}
	n := len(tp.Columns)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			kind := refDetectDerivation(rows, a, b)
			if kind != "" {
				tp.Derivations = append(tp.Derivations, Derivation{
					From: tp.Columns[a].Name, To: tp.Columns[b].Name, Kind: kind,
				})
			}
		}
	}
}

func refDetectDerivation(rows []storage.Row, a, b int) string {
	const currentYear = 2020
	checked := 0
	copies, caseCopies, years, ages := 0, 0, 0, 0
	for _, row := range rows {
		va, vb := row[a], row[b]
		if va.IsNull() || vb.IsNull() {
			continue
		}
		checked++
		sa, sb := va.String(), vb.String()
		if sa == sb {
			copies++
		}
		if !strings.EqualFold(sa, sb) {
		} else if sa != sb {
			caseCopies++
		}
		if len(sa) >= 4 && (reDate.MatchString(sa) || reDateTime.MatchString(sa)) && sb == sa[:4] {
			years++
		}
		if fa, oka := va.AsFloat(); oka {
			if fb, okb := vb.AsFloat(); okb {
				if fa > 1900 && fa < float64(currentYear) && fb == float64(currentYear)-fa {
					ages++
				}
			}
		}
	}
	if checked < 5 {
		return ""
	}
	frac := func(n int) float64 { return float64(n) / float64(checked) }
	switch {
	case frac(copies) >= 0.95:
		return "copy"
	case frac(caseCopies) >= 0.95:
		return "case-copy"
	case frac(years) >= 0.95:
		return "year-of"
	case frac(ages) >= 0.95:
		return "age-of"
	default:
		return ""
	}
}

// --- classifier equivalence -----------------------------------------

// adversarialStrings covers every boundary the classifiers scan:
// optional groups present/absent/malformed, RE2-\s vs Unicode-space
// distinctions, class members in unexpected positions, minimum
// lengths, and plain noise.
var adversarialStrings = []string{
	"", " ", "-", "--1", "1", "-1", " 12 ", "\t-7\n", "1 2", "12a", "a12",
	"\v1\v", "\f1\f", "1\r", "+1", "1.", ".5", "1.5", "-1.5", " 1.5 ",
	"1.5e3", "1.5E+3", "1.5e-03", "1.5e", "1.5e+", "1.5e3x", "1.5e3 ", "1..5",
	"1.5.6", "1,5", "Inf", "-Inf", "Infinity", "NaN", "nan", "0x1F", "0x1p4",
	"2020-01-02", "2020-1-02", "2020-01-2", "2020-01-022", "x020-01-02",
	"2020-01-02 10:30", "2020-01-02T10:30", "2020-01-02t10:30",
	"2020-01-02 10:30:45", "2020-01-02 10:30:4", "2020-01-02 10:3",
	"2020-01-02 10:30.5", "2020-01-02 10:30:45.123", "2020-01-02 10:30:45.",
	"2020-01-02 10:30:456", "2020-01-02 10:30:45.123456",
	"2020-01-02 10:30z", "2020-01-02 10:30Z", "2020-01-02 10:30 Z",
	"2020-01-02 10:30:45+02:00", "2020-01-02 10:30:45-0200",
	"2020-01-02 10:30:45+02:0", "2020-01-02 10:30:45+2:00",
	"2020-01-02 10:30:45.5+02:00", "2020-01-02 10:30.5Z",
	"2020-01-02 10:30:45 +02:00", "2020-01-02 10:30:45\t+0200",
	"2020-01-02 10:30:45+020:0", "2020-01-02 10:30:45+02:000",
	"2020-01-0210:30", "2020-01-02 103:0",
	"a@b.c", "a@b.c.", "a@.b.c", ".a@b.c", "a@b..c", "a@b.", "a@.c", "@b.c",
	"a@", "@", "a@b@c.d", "a b@c.d", "a@b c.d", "a@b.c\t", "ä@ö.ü", "a@bc",
	"a@b.cd.ef", "aa@bb.cc",
	"/var/log/x.txt", "C:\\temp\\f", "./rel", "../up", ".hidden", "a.b/c",
	"file.jpg", "file.exe", "some/file.unknown", "x.csv", "-x.csv", "x-.csv",
	"a,b,c", "a, b, c", "a,b", "a|b|c", "a;b;c", "a,,b", ",,", "a,b c,d",
	"one, two words, three", "U1,U2,U3",
	"deadbeefdeadbeefdead", "deadbeefdeadbeefdea", "$./=+$./=+$./=+$./=+",
	"short", "0123456789012345678", "01234567890123456789",
	"héllo", "héllo,wörld", "\x80\xFF", "a\x00b", "１２３", "ｅmail@ｂ.ｃ",
}

func randString(r *xrand.Rand) string {
	alphabets := []string{
		"0123456789",
		"0123456789.-+eE \t",
		"0123456789-: TZz.+",
		"abc@. ",
		"abcdefghijklmnopqrstuvwxyz0123456789./\\:-_",
		"a,b;c| .",
		" \t\n\f\r\v",
		"0123456789abcdefABCDEF$./=+",
	}
	alpha := xrand.Pick(r, alphabets)
	n := r.Intn(28)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return sb.String()
}

func TestClassifierEquivalence(t *testing.T) {
	checks := []struct {
		name string
		fast func(string) bool
		ref  func(string) bool
	}{
		{"int", intLike, reInt.MatchString},
		{"float", floatLike, reFloat.MatchString},
		{"date", dateLike, reDate.MatchString},
		{"datetime-notz", dateTimeNoTZLike, reDateTime.MatchString},
		{"datetime-tz", dateTimeTZLike, reDateTimeTZ.MatchString},
		{"email", emailLike, reEmail.MatchString},
		{"path", pathLike, rePath.MatchString},
		{"delim-list", delimListLike, refDelimListLike},
	}
	verify := func(s string) {
		t.Helper()
		for _, c := range checks {
			if got, want := c.fast(s), c.ref(s); got != want {
				t.Errorf("%s(%q) = %v, reference regex says %v", c.name, s, got, want)
			}
		}
	}
	for _, s := range adversarialStrings {
		verify(s)
	}
	r := xrand.New(0xc1a551f7)
	for i := 0; i < 20000; i++ {
		verify(randString(r))
	}
}

// --- whole-profile equivalence ---------------------------------------

// randValue draws from value distributions that exercise every
// classifier and both numeric coercion paths, plus nulls.
func randValue(r *xrand.Rand) storage.Value {
	switch r.Intn(12) {
	case 0:
		return storage.Null()
	case 1:
		return storage.Int(int64(r.Intn(2000)) - 50)
	case 2:
		return storage.Float(float64(r.Intn(1000))/7 - 3)
	case 3:
		return storage.Bool(r.Bool(0.5))
	case 4:
		return storage.Time(int64(r.Intn(1 << 30)))
	case 5:
		return storage.TimeTZ(int64(r.Intn(1<<30)), int16(r.Intn(720)-360))
	case 6:
		return storage.Str(fmt.Sprintf("%d", r.Intn(100000)-500))
	case 7:
		return storage.Str(fmt.Sprintf("2020-0%d-1%d 0%d:3%d:0%d",
			r.Intn(9)+1, r.Intn(9), r.Intn(9), r.Intn(9), r.Intn(9)))
	case 8:
		return storage.Str(fmt.Sprintf("u%d@example%d.com", r.Intn(40), r.Intn(9)))
	case 9:
		return storage.Str(fmt.Sprintf("a%d,b%d,c%d", r.Intn(7), r.Intn(5), r.Intn(3)))
	case 10:
		return storage.Str(randString(r))
	default:
		return storage.Str(xrand.Pick(r, adversarialStrings))
	}
}

// buildRandomTable assembles rows shaped to trigger FDs, derivations,
// copies, and year/age relationships alongside pure noise columns.
func buildRandomTable(r *xrand.Rand, rows int) *storage.Table {
	tab := storage.NewTable("rand", []storage.ColumnDef{
		{Name: "id", Class: schema.ClassInteger},
		{Name: "city", Class: schema.ClassChar},
		{Name: "zip", Class: schema.ClassChar},
		{Name: "city_copy", Class: schema.ClassChar},
		{Name: "dob", Class: schema.ClassChar},
		{Name: "birth_year", Class: schema.ClassChar},
		{Name: "yob", Class: schema.ClassInteger},
		{Name: "age", Class: schema.ClassInteger},
		{Name: "noise", Class: schema.ClassText},
	})
	for i := 0; i < rows; i++ {
		city := fmt.Sprintf("C%d", r.Intn(5))
		year := 1950 + r.Intn(60)
		row := storage.Row{
			storage.Int(int64(i)),
			storage.Str(city),
			storage.Str("Z-" + city),
			storage.Str(strings.ToUpper(city)),
			storage.Str(fmt.Sprintf("%d-06-15", year)),
			storage.Str(fmt.Sprintf("%d", year)),
			storage.Int(int64(year)),
			storage.Int(int64(2020 - year)),
			randValue(r),
		}
		// Sprinkle nulls over the structured columns too.
		if r.Bool(0.05) {
			row[r.Intn(len(row)-1)+1] = storage.Null()
		}
		if _, err := tab.Insert(row); err != nil {
			panic(err)
		}
	}
	return tab
}

// TestProfileMatchesReference: the streaming profiler must produce
// deeply equal output to the original clone-and-rescan implementation
// for identical seeds — across table sizes below, at, and far above
// the reservoir bound, and across seeds and sample sizes.
func TestProfileMatchesReference(t *testing.T) {
	cases := []struct {
		rows int
		opts Options
	}{
		{0, Options{}},
		{3, Options{}},
		{12, Options{}},
		{40, Options{SampleSize: 40}},
		{200, Options{SampleSize: 50, Seed: 11}},
		{200, Options{SampleSize: 50, Seed: 12}},
		{1200, Options{SampleSize: 100, Seed: 99}},
		{1200, Options{SampleSize: 1200}},
		{3000, Options{SampleSize: 64, Seed: 7}},
	}
	for ci, tc := range cases {
		r := xrand.New(uint64(1000 + ci))
		tab := buildRandomTable(r, tc.rows)
		got, err := ProfileTableContext(context.Background(), tab, tc.opts)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		want := referenceProfile(tab, tc.opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (rows=%d opts=%+v): profile diverged from reference\ngot:  %+v\nwant: %+v",
				ci, tc.rows, tc.opts, got, want)
			for i := range want.Columns {
				if !reflect.DeepEqual(got.Columns[i], want.Columns[i]) {
					t.Errorf("  column %s:\n  got:  %+v\n  want: %+v",
						want.Columns[i].Name, got.Columns[i], want.Columns[i])
				}
			}
		}
	}
}

// TestProfileMatchesReferenceMixedWorstCase drives a table whose every
// cell comes from the adversarial pools, with many deletions creating
// scan gaps.
func TestProfileMatchesReferenceMixedWorstCase(t *testing.T) {
	r := xrand.New(0xbadcafe)
	tab := storage.NewTable("mixed", []storage.ColumnDef{
		{Name: "a", Class: schema.ClassText},
		{Name: "b", Class: schema.ClassText},
		{Name: "c", Class: schema.ClassText},
	})
	for i := 0; i < 600; i++ {
		tab.MustInsert(randValue(r), randValue(r), randValue(r))
	}
	for i := 0; i < 200; i++ {
		_ = tab.Delete(int64(r.Intn(600)))
	}
	for _, opts := range []Options{{}, {SampleSize: 100, Seed: 3}, {SampleSize: 5000}} {
		got := ProfileTable(tab, opts)
		want := referenceProfile(tab, opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opts %+v: profile diverged from reference", opts)
		}
	}
}

// TestProfileAllocationBudget pins the rewrite's reason to exist: the
// bench fixture table (mixed numbers-as-text, list strings, FD pairs)
// must profile in a small fraction of the allocations the reference
// implementation needs. The bound is deliberately loose — it catches
// an accidental return to per-pass rendering or clone-based
// reservoirs, not minor churn.
func TestProfileAllocationBudget(t *testing.T) {
	tab := storage.NewTable("bench", []storage.ColumnDef{
		{Name: "id", Class: schema.ClassInteger},
		{Name: "city", Class: schema.ClassChar},
		{Name: "zip", Class: schema.ClassChar},
		{Name: "val", Class: schema.ClassChar},
		{Name: "tags", Class: schema.ClassText},
	})
	for i := 0; i < 2000; i++ {
		city := fmt.Sprintf("C%d", i%17)
		tab.MustInsert(
			storage.Int(int64(i)),
			storage.Str(city),
			storage.Str("Z-"+city),
			storage.Str(fmt.Sprintf("%d", i*3)),
			storage.Str(fmt.Sprintf("a%d,b%d,c%d", i%7, i%5, i%3)),
		)
	}
	allocs := testing.AllocsPerRun(5, func() {
		ProfileTable(tab, Options{})
	})
	// The reference implementation needs ~60k allocations on this
	// fixture; the streaming profiler a few thousand (mostly integer
	// renderings). 20k keeps headroom while still proving the ≥3x
	// reduction end to end.
	if allocs > 20000 {
		t.Errorf("ProfileTable allocated %.0f times; budget is 20000 (reference needs ~60k)", allocs)
	}
}
