package dbdeo

import (
	"testing"

	"sqlcheck/internal/rules"
)

func types(fs []Finding) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		out[f.RuleID] = true
	}
	return out
}

func TestSupports11Types(t *testing.T) {
	if len(Types) != 11 {
		t.Fatalf("types = %d, want 11", len(Types))
	}
	if !Supports(rules.IDGodTable) || Supports(rules.IDColumnWildcard) {
		t.Error("Supports misreports")
	}
}

func TestDetectMVAAndPattern(t *testing.T) {
	fs := Detect([]string{`SELECT * FROM t WHERE user_ids LIKE '%U1%'`})
	tt := types(fs)
	if !tt[rules.IDMultiValuedAttribute] || !tt[rules.IDPatternMatching] {
		t.Errorf("findings = %+v", fs)
	}
}

func TestDbdeoFalsePositives(t *testing.T) {
	// Prefix LIKE on an id column is index-friendly and not an MVA,
	// but dbdeo flags it — the FP behavior the paper measures.
	fs := Detect([]string{`SELECT * FROM t WHERE order_id LIKE 'ORD-2020%'`})
	tt := types(fs)
	if !tt[rules.IDMultiValuedAttribute] {
		t.Error("dbdeo should FP on prefix LIKE over id column")
	}
	// Type-parameter commas inflate dbdeo's god-table comma counting.
	fs = Detect([]string{`CREATE TABLE prices (id INT PRIMARY KEY, a NUMERIC(10,2), b NUMERIC(10,2), c NUMERIC(10,2), d NUMERIC(10,2), e NUMERIC(10,2), f ENUM('x','y','z'))`})
	if !types(fs)[rules.IDGodTable] {
		t.Error("dbdeo should FP god-table on type parameter commas")
	}
	// Legitimate numeric-suffixed columns look like data-in-metadata.
	fs = Detect([]string{`CREATE TABLE files (id INT PRIMARY KEY, sha256 VARCHAR(64), utf8 TEXT, addr1 VARCHAR(80), addr2 VARCHAR(80))`})
	if !types(fs)[rules.IDDataInMetadata] {
		t.Error("dbdeo should FP data-in-metadata on hash/address columns")
	}
	// parent_id referencing ANOTHER table is not an adjacency list.
	fs = Detect([]string{`CREATE TABLE child (id INT PRIMARY KEY, parent_id INT REFERENCES parents(id))`})
	if !types(fs)[rules.IDAdjacencyList] {
		t.Error("dbdeo should FP adjacency-list on parent_id naming")
	}
}

func TestDbdeoFalseNegatives(t *testing.T) {
	// CHECK IN-list enumeration: dbdeo only knows ENUM(.
	fs := Detect([]string{`CREATE TABLE u (id INT PRIMARY KEY, role VARCHAR(5) CHECK (role IN ('R1','R2')))`})
	if types(fs)[rules.IDEnumeratedTypes] {
		t.Error("dbdeo unexpectedly caught CHECK IN-list")
	}
	// MVA on a column without 'id' in the name.
	fs = Detect([]string{`SELECT * FROM t WHERE assignees LIKE '%bob%'`})
	if types(fs)[rules.IDMultiValuedAttribute] {
		t.Error("dbdeo unexpectedly caught non-id list column")
	}
	// Unsupported types are never reported.
	fs = Detect([]string{`SELECT * FROM t ORDER BY RAND()`, `INSERT INTO t VALUES (1)`})
	if len(fs) != 0 {
		t.Errorf("unsupported types flagged: %+v", fs)
	}
}

func TestNoPrimaryKeyAndClone(t *testing.T) {
	fs := Detect([]string{
		"CREATE TABLE a (x INT)",
		"CREATE TABLE b (x INT PRIMARY KEY)",
		"CREATE TABLE sales_2020 (x INT PRIMARY KEY)",
	})
	byStmt := map[int]map[string]bool{}
	for _, f := range fs {
		if byStmt[f.StatementIndex] == nil {
			byStmt[f.StatementIndex] = map[string]bool{}
		}
		byStmt[f.StatementIndex][f.RuleID] = true
	}
	if !byStmt[0][rules.IDNoPrimaryKey] {
		t.Error("missing pk not flagged")
	}
	if byStmt[1][rules.IDNoPrimaryKey] {
		t.Error("pk table flagged")
	}
	if !byStmt[2][rules.IDCloneTable] {
		t.Error("numbered table not flagged")
	}
}

func TestIndexOveruseStateful(t *testing.T) {
	d := New()
	stmts := []string{
		"CREATE INDEX i1 ON t (a)",
		"CREATE INDEX i2 ON t (b)",
		"CREATE INDEX i3 ON t (c)",
		"CREATE INDEX i4 ON t (d)",
		"CREATE INDEX other ON u (x)",
	}
	fs := d.DetectAll(stmts)
	count := 0
	for _, f := range fs {
		if f.RuleID == rules.IDIndexOveruse {
			count++
			if f.StatementIndex != 3 {
				t.Errorf("flagged statement %d", f.StatementIndex)
			}
		}
	}
	if count != 1 {
		t.Errorf("overuse findings = %d, want 1 (the 4th index)", count)
	}
}

func TestRoundingAndFloatDetection(t *testing.T) {
	fs := Detect([]string{"CREATE TABLE t (id INT PRIMARY KEY, price FLOAT)"})
	if !types(fs)[rules.IDRoundingErrors] {
		t.Error("float not flagged")
	}
}

func TestCountByType(t *testing.T) {
	fs := Detect([]string{
		"SELECT * FROM t WHERE a LIKE 'x%'",
		"SELECT * FROM t WHERE b LIKE 'y%'",
	})
	counts := CountByType(fs)
	if counts[rules.IDPatternMatching] != 2 {
		t.Errorf("counts = %v", counts)
	}
}
