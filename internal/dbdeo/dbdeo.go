// Package dbdeo reimplements the baseline anti-pattern detector of
// Sharma et al. ("Smelly relations", ICSE 2018) that the paper
// compares against (§8.1). dbdeo is a per-statement, regex-driven
// static analyzer supporting 11 anti-pattern types. Its detection
// style is reproduced faithfully, including the behaviors the paper
// criticizes: string-level matching with no schema or data context,
// which yields both false positives (e.g. counting type-parameter
// commas toward the god-table column threshold, flagging every LIKE as
// pattern matching) and false negatives (e.g. missing CHECK IN-list
// enumerations).
package dbdeo

import (
	"regexp"
	"strings"

	"sqlcheck/internal/rules"
)

// Types lists the 11 anti-pattern types dbdeo supports, identified by
// the same rule IDs sqlcheck uses so results are comparable.
var Types = []string{
	rules.IDMultiValuedAttribute,
	rules.IDNoPrimaryKey,
	rules.IDGodTable,
	rules.IDDataInMetadata,
	rules.IDAdjacencyList,
	rules.IDRoundingErrors,
	rules.IDEnumeratedTypes,
	rules.IDIndexOveruse,
	rules.IDIndexUnderuse,
	rules.IDCloneTable,
	rules.IDPatternMatching,
}

// Supports reports whether dbdeo can detect the given rule ID.
func Supports(ruleID string) bool {
	for _, t := range Types {
		if t == ruleID {
			return true
		}
	}
	return false
}

// Finding is one dbdeo detection.
type Finding struct {
	RuleID         string
	StatementIndex int
	Match          string
}

var (
	reCreateTable = regexp.MustCompile(`(?is)^\s*create\s+(temporary\s+|temp\s+)?table\s+(if\s+not\s+exists\s+)?([\w."\x60\[\]]+)`)
	reCreateIndex = regexp.MustCompile(`(?is)^\s*create\s+(unique\s+)?index\s+\S+\s+on\s+([\w."\x60]+)`)
	rePrimaryKey  = regexp.MustCompile(`(?i)primary\s+key`)
	// MVA per dbdeo: an id-ish column compared with LIKE/REGEXP
	// (the paper quotes the regex family "(id\s+regexp)|(id\s+like)").
	reMVA = regexp.MustCompile(`(?i)\b\w*ids?\s+(not\s+)?(like|regexp|rlike)\b`)
	// Every LIKE/REGEXP counts as pattern matching for dbdeo.
	rePattern = regexp.MustCompile(`(?i)\b(like|regexp|rlike|similar\s+to)\b`)
	reEnum    = regexp.MustCompile(`(?i)\benum\s*\(`)
	reFloat   = regexp.MustCompile(`(?i)\b(float|real|double)\b`)
	// Numeric-suffixed identifiers suggest data in metadata — with no
	// context this over-matches hashes, address lines, etc.
	reMeta = regexp.MustCompile(`(?i)\b([a-z_]+\d+)\s+(int|integer|bigint|smallint|varchar|text|char|float|double|real|decimal|numeric|date|datetime|timestamp|boolean)\b`)
	// Adjacency list by column naming.
	reAdjacency = regexp.MustCompile(`(?i)\b(parent_?id|manager_?id)\b`)
	// Clone tables by name suffix.
	reCloneName = regexp.MustCompile(`(?i)^[\w]*[a-z]_?\d+$`)
)

// Detector carries the minimal cross-statement state dbdeo keeps (a
// count of indexes per table for the index-overuse smell).
type Detector struct {
	indexesPerTable map[string]int
	// OveruseThreshold is the per-table index count beyond which
	// CREATE INDEX statements are flagged.
	OveruseThreshold int
}

// New returns a detector with dbdeo's defaults.
func New() *Detector {
	return &Detector{indexesPerTable: map[string]int{}, OveruseThreshold: 3}
}

// Detect runs the regex rules over each raw SQL statement.
func Detect(stmts []string) []Finding {
	return New().DetectAll(stmts)
}

// DetectAll analyzes the statements in order.
func (d *Detector) DetectAll(stmts []string) []Finding {
	var out []Finding
	for i, s := range stmts {
		out = append(out, d.DetectOne(i, s)...)
	}
	return out
}

// DetectOne analyzes one raw statement.
func (d *Detector) DetectOne(idx int, stmt string) []Finding {
	var out []Finding
	add := func(ruleID, match string) {
		out = append(out, Finding{RuleID: ruleID, StatementIndex: idx, Match: match})
	}

	if m := reMVA.FindString(stmt); m != "" {
		add(rules.IDMultiValuedAttribute, m)
	}
	if m := rePattern.FindString(stmt); m != "" {
		add(rules.IDPatternMatching, m)
	}

	if ct := reCreateTable.FindStringSubmatch(stmt); ct != nil {
		tableName := strings.Trim(ct[3], "\"`[]")
		if !rePrimaryKey.MatchString(stmt) {
			add(rules.IDNoPrimaryKey, tableName)
		}
		// God table: dbdeo counts commas inside the outermost
		// parentheses — type parameters such as NUMERIC(10,2) and
		// ENUM('a','b') inflate the count (a known FP source).
		if commas := strings.Count(stmt, ","); commas >= 10 {
			add(rules.IDGodTable, tableName)
		}
		if m := reMeta.FindAllString(stmt, -1); len(m) >= 2 {
			add(rules.IDDataInMetadata, strings.Join(dedupeStrings(m), "; "))
		}
		if m := reAdjacency.FindString(stmt); m != "" {
			add(rules.IDAdjacencyList, m)
		}
		if m := reFloat.FindString(stmt); m != "" {
			add(rules.IDRoundingErrors, m)
		}
		if m := reEnum.FindString(stmt); m != "" {
			add(rules.IDEnumeratedTypes, m)
		}
		if reCloneName.MatchString(tableName) && regexp.MustCompile(`\d$`).MatchString(tableName) {
			add(rules.IDCloneTable, tableName)
		}
		// Index underuse: a wide table whose DDL declares no secondary
		// key material at all.
		if strings.Count(stmt, ",") >= 5 && !regexp.MustCompile(`(?i)\b(index|key|unique)\b`).MatchString(stmt) {
			add(rules.IDIndexUnderuse, tableName)
		}
	}

	if ci := reCreateIndex.FindStringSubmatch(stmt); ci != nil {
		table := strings.ToLower(strings.Trim(ci[2], "\"`"))
		d.indexesPerTable[table]++
		if d.indexesPerTable[table] > d.OveruseThreshold {
			add(rules.IDIndexOveruse, table)
		}
	}

	return out
}

// CountByType aggregates findings per rule ID.
func CountByType(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.RuleID]++
	}
	return out
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		k := strings.ToLower(s)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}
