package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	tr.Insert("b", 2)
	tr.Insert("a", 1)
	tr.Insert("c", 3)
	tr.Insert("a", 10) // duplicate key
	if got := tr.Get("a"); len(got) != 2 || got[0] != 1 || got[1] != 10 {
		t.Errorf("Get(a) = %v", got)
	}
	if got := tr.Get("zz"); got != nil {
		t.Errorf("Get(zz) = %v, want nil", got)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr := New()
	const n = 10_000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Insert(fmt.Sprintf("k%06d", i), int64(i))
	}
	if tr.Depth() < 2 {
		t.Errorf("depth = %d, expected splits to occur", tr.Depth())
	}
	var keys []string
	tr.Ascend(func(k string, ids []int64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != n {
		t.Fatalf("distinct keys = %d, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("Ascend not in order")
	}
	for i := 0; i < n; i += 997 {
		k := fmt.Sprintf("k%06d", i)
		got := tr.Get(k)
		if len(got) != 1 || got[0] != int64(i) {
			t.Errorf("Get(%s) = %v", k, got)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(fmt.Sprintf("k%04d", i%100), int64(i))
	}
	if !tr.Delete("k0007", 7) {
		t.Fatal("Delete existing = false")
	}
	if tr.Delete("k0007", 7) {
		t.Fatal("double delete = true")
	}
	if tr.Delete("missing", 0) {
		t.Fatal("Delete missing key = true")
	}
	ids := tr.Get("k0007")
	for _, id := range ids {
		if id == 7 {
			t.Error("id 7 still present")
		}
	}
	if tr.Len() != 999 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDeleteEmptiesKey(t *testing.T) {
	tr := New()
	tr.Insert("only", 1)
	tr.Delete("only", 1)
	if got := tr.Get("only"); got != nil {
		t.Errorf("Get after full delete = %v", got)
	}
	if tr.Keys() != 0 {
		t.Errorf("Keys = %d", tr.Keys())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("k%02d", i), int64(i))
	}
	var got []string
	tr.AscendRange("k10", "k19", func(k string, ids []int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "k10" || got[9] != "k19" {
		t.Errorf("range = %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendRange("k00", "", func(k string, ids []int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop count = %d", count)
	}
}

// Property: tree agrees with a reference map for random workloads.
func TestTreeMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New()
		ref := map[string][]int64{}
		for i, op := range ops {
			key := fmt.Sprintf("k%03d", op%271)
			id := int64(i)
			if op%3 == 0 && len(ref[key]) > 0 {
				victim := ref[key][0]
				ref[key] = ref[key][1:]
				if len(ref[key]) == 0 {
					delete(ref, key)
				}
				if !tr.Delete(key, victim) {
					return false
				}
			} else {
				ref[key] = append(ref[key], id)
				tr.Insert(key, id)
			}
		}
		total := 0
		for k, ids := range ref {
			got := tr.Get(k)
			if len(got) != len(ids) {
				return false
			}
			total += len(ids)
		}
		return tr.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Ascend yields keys in strictly increasing order regardless
// of insertion order.
func TestAscendSortedProperty(t *testing.T) {
	f := func(keys []string) bool {
		tr := New()
		for i, k := range keys {
			tr.Insert(k, int64(i))
		}
		prev := ""
		first := true
		ok := true
		tr.Ascend(func(k string, ids []int64) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			prev, first = k, false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(fmt.Sprintf("k%08d", i), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100_000; i++ {
		tr.Insert(fmt.Sprintf("k%08d", i), int64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("k%08d", i%100_000))
	}
}

// Regression: keys that become split separators must remain findable.
// Variable-width keys inserted in numeric order ("3U0", "3U1", ...,
// "3U149") are not lexicographically sorted, which previously lost
// separator keys into the wrong child.
func TestSeparatorKeysFindable(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("3U%d", i), int64(i))
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("3U%d", i)
		if got := tr.Get(k); len(got) != 1 || got[0] != int64(i) {
			t.Fatalf("Get(%s) = %v", k, got)
		}
	}
	// Deletions of separator keys work too.
	for i := 0; i < n; i += 7 {
		if !tr.Delete(fmt.Sprintf("3U%d", i), int64(i)) {
			t.Fatalf("Delete(3U%d) failed", i)
		}
	}
}
