// Package btree implements an in-memory B+tree keyed by string with
// int64 row-id postings. It backs the ordered secondary indexes of the
// storage engine: point lookups, ordered iteration (for streaming
// GROUP BY), and range scans. Duplicate keys are supported; each key
// holds a list of row ids.
package btree

import "sort"

const (
	// degree is the maximum number of keys per node; chosen small
	// enough to exercise splits in tests, large enough to keep depth
	// shallow for realistic table sizes.
	degree = 64
)

// Tree is a B+tree from string keys to sets of int64 row ids.
type Tree struct {
	root *node
	size int // number of (key,id) postings
}

type node struct {
	leaf     bool
	keys     []string
	children []*node   // interior nodes
	vals     [][]int64 // leaf nodes: posting lists parallel to keys
	next     *node     // leaf chain for ordered iteration
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of postings (key/id pairs) in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds a posting for key.
func (t *Tree) Insert(key string, id int64) {
	r := t.root
	if len(r.keys) >= degree {
		newRoot := &node{children: []*node{r}}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	t.root.insert(key, id)
	t.size++
}

// descend returns the child index to follow for key: the first child
// whose separator is strictly greater than key. Keys equal to a
// separator live in the RIGHT child (a leaf split keeps the separator
// key as the right node's first key), so equality moves right.
func (n *node) descend(key string) int {
	return sort.Search(len(n.keys), func(j int) bool { return n.keys[j] > key })
}

func (n *node) insert(key string, id int64) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = append(n.vals[i], id)
			return
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []int64{id}
		return
	}
	i := n.descend(key)
	if len(n.children[i].keys) >= degree {
		n.splitChild(i)
		if key >= n.keys[i] {
			i++
		}
	}
	n.children[i].insert(key, id)
}

// splitChild splits the i-th child, promoting its separator key.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	var sep string
	right := &node{leaf: child.leaf}
	if child.leaf {
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Get returns the posting list for key, or nil.
func (t *Tree) Get(key string) []int64 {
	n := t.root
	for !n.leaf {
		n = n.children[n.descend(key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i]
	}
	return nil
}

// Delete removes one posting (key, id). It reports whether the posting
// existed. Underflow is tolerated (nodes may become sparse); for the
// workloads the engine runs — bulk load then read-mostly — rebalancing
// on delete is not worth its complexity.
func (t *Tree) Delete(key string, id int64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.descend(key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	ids := n.vals[i]
	for j, v := range ids {
		if v == id {
			n.vals[i] = append(ids[:j], ids[j+1:]...)
			if len(n.vals[i]) == 0 {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
			}
			t.size--
			return true
		}
	}
	return false
}

// Ascend calls fn for each (key, ids) pair in ascending key order
// until fn returns false.
func (t *Tree) Ascend(fn func(key string, ids []int64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i, k := range n.keys {
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// AscendRange calls fn for keys in [lo, hi] (inclusive bounds; empty
// string bounds mean unbounded) in ascending order until fn returns
// false.
func (t *Tree) AscendRange(lo, hi string, fn func(key string, ids []int64) bool) {
	n := t.root
	for !n.leaf {
		// Descend toward the leftmost leaf that can contain lo: keys
		// equal to a separator sit in the right child.
		i := sort.Search(len(n.keys), func(j int) bool { return n.keys[j] > lo })
		n = n.children[i]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if hi != "" && k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Keys returns the number of distinct keys (for stats).
func (t *Tree) Keys() int {
	count := 0
	t.Ascend(func(string, []int64) bool { count++; return true })
	return count
}

// Depth returns the height of the tree (1 for a single leaf).
func (t *Tree) Depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
