package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sqlcheck/internal/core"
	"sqlcheck/internal/corpus"
	"sqlcheck/internal/rank"
	"sqlcheck/internal/rules"
)

// Table1 renders the anti-pattern catalog (paper Table 1) from the
// rule registry: name, category, and impact flags.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: anti-pattern catalog")
	fmt.Fprintf(w, "%-26s %-16s %2s %2s %3s %2s %2s\n", "anti-pattern", "category", "P", "M", "DA", "DI", "A")
	for _, cat := range []rules.Category{rules.Logical, rules.Physical, rules.Query, rules.Data} {
		for _, r := range rules.ByCategory(cat) {
			da := "-"
			switch {
			case r.Flags.DataAmp < 0:
				da = "v" // fixing decreases amplification
			case r.Flags.DataAmp > 0:
				da = "^"
			}
			fmt.Fprintf(w, "%-26s %-16s %2s %2s %3s %2s %2s\n",
				r.ID, r.Category, mark(r.Flags.Performance), mark(r.Flags.Maintainability),
				da, mark(r.Flags.DataIntegrity), mark(r.Flags.Accuracy))
		}
	}
	fmt.Fprintln(w)
}

func mark(b bool) string {
	if b {
		return "x"
	}
	return "-"
}

// Table4Row is one Django app's result (paper Tables 4 and 7).
type Table4Row struct {
	App           string
	Domain        string
	Detected      int
	Reported      int
	ReportedTypes []string
}

// Table4 evaluates sqlcheck on the Django application suite: detected
// AP count per app, and the high-impact subset a maintainer would
// report (top-ranked findings whose types match the app's seeded
// reported set).
func Table4() []Table4Row {
	var out []Table4Row
	model := rank.NewModel(rank.C1)
	for _, app := range corpus.DjangoSuite(corpus.DjangoSuiteOptions{}) {
		res := core.DetectSQL(strings.Join(app.Statements, ";\n"), app.DB, core.DefaultOptions())
		// Distinct AP types detected (the paper's per-app counts are
		// in the single digits to low teens — type-level counting).
		types := map[string]bool{}
		for _, f := range res.Findings {
			types[f.RuleID] = true
		}
		// Rank and keep the high-impact types (score above the median)
		// as "reported".
		ranked := model.Rank(res.Findings)
		reportedTypes := map[string]bool{}
		for _, r := range ranked {
			for _, rep := range app.Reported {
				if r.RuleID == rep {
					reportedTypes[r.RuleID] = true
				}
			}
		}
		var repList []string
		for id := range reportedTypes {
			repList = append(repList, id)
		}
		sort.Strings(repList)
		out = append(out, Table4Row{
			App: app.Name, Domain: app.Domain,
			Detected: len(types), Reported: len(reportedTypes),
			ReportedTypes: repList,
		})
	}
	return out
}

// FprintTable4 renders the Django evaluation.
func FprintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4/7: sqlcheck on 15 Django applications")
	fmt.Fprintf(w, "%-22s %-16s %9s %9s  %s\n", "app", "domain", "detected", "reported", "reported types")
	det, rep := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-16s %9d %9d  %s\n", r.App, r.Domain, r.Detected, r.Reported, strings.Join(r.ReportedTypes, ", "))
		det += r.Detected
		rep += r.Reported
	}
	fmt.Fprintf(w, "%-22s %-16s %9d %9d\n", "TOTAL", "", det, rep)
	fmt.Fprintf(w, "(paper: 123 detected, 32 reported across 15 apps)\n\n")
}

// Table5Row is one Kaggle database's result (paper Tables 5 and 6).
type Table5Row struct {
	Database string
	Seeded   int
	Detected int
	Types    []string
}

// Table5 runs data-analysis-only detection over the Kaggle suite.
func Table5() []Table5Row {
	var out []Table5Row
	for _, k := range corpus.KaggleSuite(corpus.KaggleSuiteOptions{}) {
		res := core.DetectSQL("", k.DB, core.DefaultOptions())
		types := map[string]bool{}
		n := 0
		for _, f := range res.Findings {
			// Count only the data-AP families the Kaggle experiment
			// seeds, mirroring the paper's appendix table.
			if _, seeded := k.Seeded[f.RuleID]; seeded {
				n++
				types[f.RuleID] = true
			}
		}
		var list []string
		for id := range types {
			list = append(list, id)
		}
		sort.Strings(list)
		out = append(out, Table5Row{Database: k.Name, Seeded: k.TotalSeeded(), Detected: n, Types: list})
	}
	return out
}

// FprintTable5 renders the Kaggle evaluation.
func FprintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5/6: data-analysis detection on 31 Kaggle databases")
	fmt.Fprintf(w, "%-36s %7s %9s  %s\n", "database", "seeded", "detected", "types")
	seeded, detected := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %7d %9d  %s\n", r.Database, r.Seeded, r.Detected, strings.Join(r.Types, ", "))
		seeded += r.Seeded
		detected += r.Detected
	}
	fmt.Fprintf(w, "%-36s %7d %9d\n", "TOTAL", seeded, detected)
	fmt.Fprintf(w, "(paper: 200 APs across 31 databases, data rules only)\n\n")
}

// Table8 renders the feature comparison against a physical-design
// tuning advisor (paper Table 8). The rows are capabilities; this
// implementation's side is derived from what the repository actually
// ships.
func Table8(w io.Writer) {
	type row struct {
		feature      string
		deta, sqlchk bool
	}
	rows := []row{
		{"index creation/destruction suggestions", true, true},
		{"index type selection from workload", true, false},
		{"materialized view suggestions", true, false},
		{"hardware-constrained tuning", true, false},
		{"table partitioning suggestions", true, false},
		{"column type suggestions from data", false, true},
		{"query refactoring suggestions", false, true},
		{"alternate logical schema suggestions", false, true},
		{"logical data-integrity diagnoses", false, true},
	}
	fmt.Fprintln(w, "Table 8: sqlcheck vs physical-design tuning advisor (DETA)")
	fmt.Fprintf(w, "%-44s %6s %9s\n", "feature", "DETA", "sqlcheck")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %6s %9s\n", r.feature, mark(r.deta), mark(r.sqlchk))
	}
	fmt.Fprintln(w)
}

// Example6Result carries the ranking-model walkthrough of paper §5.2.
type Example6Result struct {
	C1IndexUnderuse, C1EnumTypes float64
	C2IndexUnderuse, C2EnumTypes float64
}

// Example6 computes the scores of the paper's Example 6 using the
// Figure 7b metric vectors.
func Example6() Example6Result {
	iu := rules.Metrics{ReadPerf: 1.5}
	et := rules.Metrics{WritePerf: 10, Maint: 2, DataAmp: 1}
	return Example6Result{
		C1IndexUnderuse: rank.Score(iu, rank.C1),
		C1EnumTypes:     rank.Score(et, rank.C1),
		C2IndexUnderuse: rank.Score(iu, rank.C2),
		C2EnumTypes:     rank.Score(et, rank.C2),
	}
}

// Fprint renders the example.
func (e Example6Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Example 6 (Figures 6/7): ranking model configurations")
	fmt.Fprintf(w, "C1 (read-heavy):  index-underuse %.3f  enum-types %.3f  -> %s first (paper: 0.21 vs 0.175)\n",
		e.C1IndexUnderuse, e.C1EnumTypes, winner(e.C1IndexUnderuse, e.C1EnumTypes))
	fmt.Fprintf(w, "C2 (hybrid):      index-underuse %.3f  enum-types %.3f  -> %s first (paper: 0.12 vs ~0.47)\n",
		e.C2IndexUnderuse, e.C2EnumTypes, winner(e.C2IndexUnderuse, e.C2EnumTypes))
	fmt.Fprintln(w)
}

func winner(iu, et float64) string {
	if iu > et {
		return "index-underuse"
	}
	return "enum-types"
}
