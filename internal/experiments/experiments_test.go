package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ms := Figure3(Small)
	if len(ms) != 3 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		// The paper reports 636x/256x/193x; we only require a decisive
		// win for the fixed design.
		if m.Factor() < 5 {
			t.Errorf("%s: factor = %.1fx, want the fix to win clearly (>5x)", m.Label, m.Factor())
		}
	}
	var buf bytes.Buffer
	Fprint(&buf, "Figure 3", ms)
	if !strings.Contains(buf.String(), "fig3a") {
		t.Error("rendering")
	}
}

func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ms := Figure8(Small)
	if len(ms) != 9 {
		t.Fatalf("measurements = %d, want 9 (a-i)", len(ms))
	}
	byLabel := map[string]Measurement{}
	for _, m := range ms {
		byLabel[strings.Fields(m.Label)[0]] = m
	}
	// (a) multiple single-column indexes tax updates.
	if f := byLabel["fig8a"].Factor(); f < 1.5 {
		t.Errorf("fig8a factor = %.2fx, want > 1.5x", f)
	}
	// (b) index helps grouped aggregation (modestly or better).
	if f := byLabel["fig8b"].Factor(); f < 1.05 {
		t.Errorf("fig8b factor = %.2fx, want >= 1.05x", f)
	}
	// (c) low-cardinality index scan loses to the sequential scan.
	if f := byLabel["fig8c"].Factor(); f < 1.2 {
		t.Errorf("fig8c factor = %.2fx, want index to lose by > 1.2x", f)
	}
	// (d, e) FK overhead is not prominent (within 3x either way).
	for _, k := range []string{"fig8d", "fig8e"} {
		f := byLabel[k].Factor()
		if f > 3 || f < 0.33 {
			t.Errorf("%s factor = %.2fx, want ~1x", k, f)
		}
	}
	// (f) indexing the referencing column wins big.
	if f := byLabel["fig8f"].Factor(); f < 10 {
		t.Errorf("fig8f factor = %.2fx, want > 10x", f)
	}
	// (g, h) enum fixes win massively.
	if f := byLabel["fig8g"].Factor(); f < 20 {
		t.Errorf("fig8g factor = %.2fx, want > 20x", f)
	}
	if f := byLabel["fig8h"].Factor(); f < 6 {
		t.Errorf("fig8h factor = %.2fx, want > 6x", f)
	}
	// (i) select is a wash (within 5x).
	if f := byLabel["fig8i"].Factor(); f > 5 || f < 0.2 {
		t.Errorf("fig8i factor = %.2fx, want ~1x", f)
	}
}

func TestTable2Shapes(t *testing.T) {
	res := Table2(Small)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	s, d := res.TotalSqlcheck, res.TotalDbdeo
	if s.FP >= d.FP {
		t.Errorf("sqlcheck FP %d not fewer than dbdeo FP %d", s.FP, d.FP)
	}
	if s.FN >= d.FN {
		t.Errorf("sqlcheck FN %d not fewer than dbdeo FN %d", s.FN, d.FN)
	}
	if s.Precision() <= d.Precision() {
		t.Errorf("precision: sqlcheck %.2f <= dbdeo %.2f", s.Precision(), d.Precision())
	}
	if s.Recall() <= d.Recall() {
		t.Errorf("recall: sqlcheck %.2f <= dbdeo %.2f", s.Recall(), d.Recall())
	}
	// §8.1 aggregate shapes: sqlcheck covers more AP types than dbdeo;
	// intra mode flags more raw candidates than inter mode (context
	// pruning).
	if res.InterTypes <= res.DbdeoTypes {
		t.Errorf("type coverage: inter %d <= dbdeo %d", res.InterTypes, res.DbdeoTypes)
	}
	if res.InterTotal <= res.DbdeoTotal {
		t.Errorf("total detections: inter %d <= dbdeo %d", res.InterTotal, res.DbdeoTotal)
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "fewer false positives") {
		t.Error("rendering")
	}
}

func TestTable3Shapes(t *testing.T) {
	res := Table3(Small)
	sTotal, dTotal := 0, 0
	for _, n := range res.GitHubS {
		sTotal += n
	}
	for _, n := range res.GitHubD {
		dTotal += n
	}
	if sTotal <= dTotal {
		t.Errorf("github: sqlcheck %d <= dbdeo %d", sTotal, dTotal)
	}
	if len(res.GitHubS) <= len(res.GitHubD) {
		t.Errorf("github type coverage: %d <= %d", len(res.GitHubS), len(res.GitHubD))
	}
	kTotal := 0
	for _, n := range res.KaggleS {
		kTotal += n
	}
	if kTotal == 0 {
		t.Error("kaggle: no data findings")
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "TOTAL") {
		t.Error("rendering")
	}
}

func TestTable4Shapes(t *testing.T) {
	rows := Table4()
	if len(rows) != 15 {
		t.Fatalf("apps = %d", len(rows))
	}
	det, rep := 0, 0
	for _, r := range rows {
		if r.Detected == 0 {
			t.Errorf("%s: nothing detected", r.App)
		}
		if r.Reported > r.Detected {
			t.Errorf("%s: reported %d > detected %d", r.App, r.Reported, r.Detected)
		}
		det += r.Detected
		rep += r.Reported
	}
	if rep == 0 || rep >= det {
		t.Errorf("reported %d vs detected %d: reporting must be selective", rep, det)
	}
	var buf bytes.Buffer
	FprintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "globaleaks") {
		t.Error("rendering")
	}
}

func TestTable5Shapes(t *testing.T) {
	rows := Table5()
	if len(rows) != 31 {
		t.Fatalf("databases = %d", len(rows))
	}
	seeded, detected := 0, 0
	for _, r := range rows {
		seeded += r.Seeded
		detected += r.Detected
	}
	if seeded != 200 {
		t.Errorf("seeded = %d, want 200", seeded)
	}
	// Data rules should recover the majority of the seeded APs.
	if detected < seeded*5/10 {
		t.Errorf("detected = %d of %d seeded", detected, seeded)
	}
	var buf bytes.Buffer
	FprintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "history-of-baseball") {
		t.Error("rendering")
	}
}

func TestExample6MatchesPaper(t *testing.T) {
	e := Example6()
	if e.C1IndexUnderuse <= e.C1EnumTypes {
		t.Error("C1 must rank index-underuse first")
	}
	if e.C2EnumTypes <= e.C2IndexUnderuse {
		t.Error("C2 must rank enum-types first")
	}
	var buf bytes.Buffer
	e.Fprint(&buf)
	if !strings.Contains(buf.String(), "index-underuse first") {
		t.Errorf("rendering: %s", buf.String())
	}
}

func TestUserStudyReportShapes(t *testing.T) {
	res := UserStudyReport()
	if res.Participants != 23 {
		t.Fatalf("participants = %d", res.Participants)
	}
	if res.Statements < 700 || res.Statements > 1500 {
		t.Errorf("statements = %d, want ~987", res.Statements)
	}
	if res.Detected == 0 || res.Applied == 0 {
		t.Errorf("pipeline empty: %+v", res)
	}
	if res.Considered > res.Detected {
		t.Errorf("considered %d > detected %d", res.Considered, res.Detected)
	}
	eff := res.Efficacy()
	if eff < 0.3 || eff > 0.75 {
		t.Errorf("efficacy = %.2f, want ~0.51", eff)
	}
	if res.EfficacyWithAmbiguous() <= eff {
		t.Error("ambiguous credit must increase efficacy")
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "efficacy") {
		t.Error("rendering")
	}
}

func TestAdjacencyAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ms := AdjacencyAblation(Small)
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	v9, v11 := ms[0], ms[1]
	if v9.Factor() <= v11.Factor() {
		t.Errorf("v9 factor %.1fx must exceed v11 factor %.1fx", v9.Factor(), v11.Factor())
	}
	if v9.Factor() < 2 {
		t.Errorf("v9 factor = %.1fx, want the seq-scan expansion to lose clearly", v9.Factor())
	}
}

func TestTable1AndTable8Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	if !strings.Contains(out, "multi-valued-attribute") || !strings.Contains(out, "missing-timezone") {
		t.Error("table 1 incomplete")
	}
	buf.Reset()
	Table8(&buf)
	if !strings.Contains(buf.String(), "query refactoring suggestions") {
		t.Error("table 8 incomplete")
	}
}

func TestDataRulesAblation(t *testing.T) {
	a := RunDataRulesAblation()
	// Scenario 1: query-only analysis false-positives on the address
	// column; data analysis suppresses it.
	if !a.QueryOnlyFP {
		t.Error("query-only analysis should flag the ambiguous address search")
	}
	if a.WithDataFP {
		t.Error("data analysis should suppress the address false positive")
	}
	// Scenario 2: query-only analysis misses the externally-handled
	// list; data analysis finds it.
	if !a.QueryOnlyFN {
		t.Error("query-only analysis should miss the list read whole")
	}
	if a.WithDataFN {
		t.Error("data analysis should find the genuine list column")
	}
	var buf bytes.Buffer
	a.Fprint(&buf)
	if !strings.Contains(buf.String(), "ablation") {
		t.Error("rendering")
	}
}
