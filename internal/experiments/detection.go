package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/core"
	"sqlcheck/internal/corpus"
	"sqlcheck/internal/dbdeo"
	"sqlcheck/internal/rules"
)

// statementFlags maps statement index -> set of rule IDs a detector
// flagged.
type statementFlags map[int]map[string]bool

func (sf statementFlags) add(idx int, ruleID string) {
	if sf[idx] == nil {
		sf[idx] = map[string]bool{}
	}
	sf[idx][ruleID] = true
}

// runDbdeo flags a repo with the baseline detector.
func runDbdeo(repo *corpus.Repo) statementFlags {
	sf := statementFlags{}
	for _, f := range dbdeo.Detect(repo.Statements) {
		sf.add(f.StatementIndex, f.RuleID)
	}
	return sf
}

// runSqlcheck flags a repo with sqlcheck in the given mode, attributing
// schema-level findings (QueryIndex == -1) to the DDL statement that
// created the table or index in question.
func runSqlcheck(repo *corpus.Repo, mode appctx.Mode) statementFlags {
	opts := core.DefaultOptions()
	opts.Config.Mode = mode
	res := core.DetectSQL(strings.Join(repo.Statements, ";\n"), nil, opts)
	sf := statementFlags{}
	for _, f := range res.Findings {
		idx := f.QueryIndex
		if idx < 0 {
			idx = attributeToStatement(res, f)
		}
		if idx < 0 {
			continue
		}
		sf.add(idx, f.RuleID)
	}
	return sf
}

// attributeToStatement locates the statement responsible for a
// schema-level finding.
func attributeToStatement(res *core.Result, f rules.Finding) int {
	for qi, facts := range res.Context.Facts {
		if f.RuleID == rules.IDIndexOveruse && facts.CreatesIndex != nil &&
			strings.EqualFold(facts.CreatesIndex.Name, f.Column) {
			return qi
		}
		if facts.CreatesTable != "" && strings.EqualFold(facts.CreatesTable, f.Table) {
			return qi
		}
	}
	return -1
}

// DetectionStats accumulates TP/FP/FN for one (detector, rule) pair.
type DetectionStats struct {
	TP, FP, FN int
	Detected   int
}

// Precision returns TP/(TP+FP), 1.0 when nothing was flagged.
func (d DetectionStats) Precision() float64 {
	if d.TP+d.FP == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FP)
}

// Recall returns TP/(TP+FN), 1.0 when nothing was there to find.
func (d DetectionStats) Recall() float64 {
	if d.TP+d.FN == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FN)
}

// score compares detector flags against ground truth for one rule over
// one repo.
func score(repo *corpus.Repo, flags statementFlags, ruleID string, st *DetectionStats) {
	for idx := range repo.Statements {
		flagged := flags[idx][ruleID]
		truth := repo.HasTruth(idx, ruleID)
		switch {
		case flagged && truth:
			st.TP++
			st.Detected++
		case flagged && !truth:
			st.FP++
			st.Detected++
		case !flagged && truth:
			st.FN++
		}
	}
}

// auditedTypes are the six anti-patterns the paper's Table 2 audits
// manually.
var auditedTypes = []string{
	rules.IDPatternMatching,
	rules.IDGodTable,
	rules.IDEnumeratedTypes,
	rules.IDRoundingErrors,
	rules.IDDataInMetadata,
	rules.IDAdjacencyList,
}

// Table2Row is one audited anti-pattern's comparison.
type Table2Row struct {
	Rule     string
	Sqlcheck DetectionStats
	Dbdeo    DetectionStats
}

// Table2Result reproduces paper Table 2 plus the §8.1 aggregate claims
// (detection counts under intra-only and intra+inter configurations).
type Table2Result struct {
	Rows []Table2Row
	// Totals per detector/mode: total flags and distinct AP types.
	DbdeoTotal, IntraTotal, InterTotal int
	DbdeoTypes, IntraTypes, InterTypes int
	// TotalSqlcheck/TotalDbdeo aggregate the audited rows.
	TotalSqlcheck, TotalDbdeo DetectionStats
}

// Table2 runs both detectors over the labeled corpus.
func Table2(scale Scale) *Table2Result {
	repos := 80
	if scale == Full {
		repos = 400
	}
	c := corpus.GitHub(corpus.GitHubOptions{Repos: repos, Seed: 1})
	res := &Table2Result{}
	perRule := map[string]*Table2Row{}
	for _, ruleID := range auditedTypes {
		perRule[ruleID] = &Table2Row{Rule: ruleID}
	}
	dbdeoTypeSet := map[string]bool{}
	intraTypeSet := map[string]bool{}
	interTypeSet := map[string]bool{}

	for _, repo := range c.Repos {
		dFlags := runDbdeo(repo)
		iFlags := runSqlcheck(repo, appctx.ModeIntra)
		nFlags := runSqlcheck(repo, appctx.ModeInter)
		for _, ruleID := range auditedTypes {
			row := perRule[ruleID]
			score(repo, nFlags, ruleID, &row.Sqlcheck)
			score(repo, dFlags, ruleID, &row.Dbdeo)
		}
		for idx := range repo.Statements {
			for id := range dFlags[idx] {
				res.DbdeoTotal++
				dbdeoTypeSet[id] = true
			}
			for id := range iFlags[idx] {
				res.IntraTotal++
				intraTypeSet[id] = true
			}
			for id := range nFlags[idx] {
				res.InterTotal++
				interTypeSet[id] = true
			}
		}
	}
	for _, ruleID := range auditedTypes {
		row := perRule[ruleID]
		res.Rows = append(res.Rows, *row)
		res.TotalSqlcheck.TP += row.Sqlcheck.TP
		res.TotalSqlcheck.FP += row.Sqlcheck.FP
		res.TotalSqlcheck.FN += row.Sqlcheck.FN
		res.TotalDbdeo.TP += row.Dbdeo.TP
		res.TotalDbdeo.FP += row.Dbdeo.FP
		res.TotalDbdeo.FN += row.Dbdeo.FN
	}
	res.DbdeoTypes = len(dbdeoTypeSet)
	res.IntraTypes = len(intraTypeSet)
	res.InterTypes = len(interTypeSet)
	return res
}

// Fprint renders the table.
func (t *Table2Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 2: detection quality, sqlcheck (S) vs dbdeo (D)")
	fmt.Fprintf(w, "%-24s %6s %6s %6s %6s %6s %6s %7s %7s\n",
		"anti-pattern", "TP-S", "FP-S", "FN-S", "TP-D", "FP-D", "FN-D", "prec-S", "prec-D")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-24s %6d %6d %6d %6d %6d %6d %6.0f%% %6.0f%%\n",
			r.Rule, r.Sqlcheck.TP, r.Sqlcheck.FP, r.Sqlcheck.FN,
			r.Dbdeo.TP, r.Dbdeo.FP, r.Dbdeo.FN,
			100*r.Sqlcheck.Precision(), 100*r.Dbdeo.Precision())
	}
	s, d := t.TotalSqlcheck, t.TotalDbdeo
	fmt.Fprintf(w, "%-24s %6d %6d %6d %6d %6d %6d %6.0f%% %6.0f%%\n",
		"TOTAL", s.TP, s.FP, s.FN, d.TP, d.FP, d.FN, 100*s.Precision(), 100*d.Precision())
	fmt.Fprintf(w, "\nfewer false positives than dbdeo: %.0f%% (paper: 48%%)\n", pctFewer(s.FP, d.FP))
	fmt.Fprintf(w, "fewer false negatives than dbdeo: %.0f%% (paper: 20%%)\n", pctFewer(s.FN, d.FN))
	fmt.Fprintf(w, "\ndetections: dbdeo %d (%d types), sqlcheck intra %d (%d types), intra+inter %d (%d types)\n",
		t.DbdeoTotal, t.DbdeoTypes, t.IntraTotal, t.IntraTypes, t.InterTotal, t.InterTypes)
	fmt.Fprintf(w, "(paper: 14764/11, 86656/18, 63058/21 — intra flags more, inter prunes FPs and adds types)\n\n")
}

func pctFewer(ours, theirs int) float64 {
	if theirs == 0 {
		return 0
	}
	return 100 * float64(theirs-ours) / float64(theirs)
}

// Table3Result reproduces paper Table 3: per-AP detection counts for
// dbdeo and sqlcheck across the three sources.
type Table3Result struct {
	// Counts[source][ruleID][detector] with detector "S" or "D".
	GitHubS, GitHubD map[string]int
	StudyS, StudyD   map[string]int
	KaggleS          map[string]int
}

// Table3 aggregates detections across corpora.
func Table3(scale Scale) *Table3Result {
	res := &Table3Result{
		GitHubS: map[string]int{}, GitHubD: map[string]int{},
		StudyS: map[string]int{}, StudyD: map[string]int{},
		KaggleS: map[string]int{},
	}
	repos := 80
	if scale == Full {
		repos = 400
	}
	c := corpus.GitHub(corpus.GitHubOptions{Repos: repos, Seed: 1})
	for _, repo := range c.Repos {
		for _, f := range dbdeo.Detect(repo.Statements) {
			res.GitHubD[f.RuleID]++
		}
		opts := core.DefaultOptions()
		r := core.DetectSQL(strings.Join(repo.Statements, ";\n"), nil, opts)
		for _, f := range r.Findings {
			res.GitHubS[f.RuleID]++
		}
	}
	for _, p := range corpus.UserStudy(corpus.UserStudyOptions{}) {
		for _, f := range dbdeo.Detect(p.Statements) {
			res.StudyD[f.RuleID]++
		}
		r := core.DetectSQL(strings.Join(p.Statements, ";\n"), nil, core.DefaultOptions())
		for _, f := range r.Findings {
			res.StudyS[f.RuleID]++
		}
	}
	for _, k := range corpus.KaggleSuite(corpus.KaggleSuiteOptions{}) {
		r := core.DetectSQL("", k.DB, core.DefaultOptions())
		for _, f := range r.Findings {
			res.KaggleS[f.RuleID]++
		}
	}
	return res
}

// Fprint renders the distribution.
func (t *Table3Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 3: AP distribution — dbdeo (D) vs sqlcheck (S)")
	fmt.Fprintf(w, "%-26s %8s %8s %8s %8s %8s\n", "anti-pattern", "gh-D", "gh-S", "study-D", "study-S", "kaggle-S")
	ids := map[string]bool{}
	for _, m := range []map[string]int{t.GitHubS, t.GitHubD, t.StudyS, t.StudyD, t.KaggleS} {
		for id := range m {
			ids[id] = true
		}
	}
	var ordered []string
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return t.GitHubS[ordered[i]]+t.StudyS[ordered[i]] > t.GitHubS[ordered[j]]+t.StudyS[ordered[j]]
	})
	var gd, gs, sd, ss, ks int
	for _, id := range ordered {
		fmt.Fprintf(w, "%-26s %8d %8d %8d %8d %8d\n", id,
			t.GitHubD[id], t.GitHubS[id], t.StudyD[id], t.StudyS[id], t.KaggleS[id])
		gd += t.GitHubD[id]
		gs += t.GitHubS[id]
		sd += t.StudyD[id]
		ss += t.StudyS[id]
		ks += t.KaggleS[id]
	}
	fmt.Fprintf(w, "%-26s %8d %8d %8d %8d %8d\n", "TOTAL", gd, gs, sd, ss, ks)
	fmt.Fprintf(w, "(paper totals: 14764 D / 63058 S on GitHub, 278 D / 336 S in the study, 200 S on Kaggle)\n\n")
}
