package experiments

import (
	"fmt"

	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// AdjacencyAblation reproduces the §8.5 observation that the adjacency
// list anti-pattern's performance impact depends on the DBMS version:
// subtree retrieval was ~5x slower than a closure table on PostgreSQL
// v9 (level-wise expansion via sequential scans) but only ~1.1x on v11
// (indexed recursive CTE execution). We model both executors against
// the same adjacency-list table and compare with a closure table.
func AdjacencyAblation(scale Scale) []Measurement {
	n := 20_000
	if scale == Full {
		n = 100_000
	}
	fanout := 8
	db := storage.NewDatabase("hier")
	emp := db.CreateTable("Employees", []storage.ColumnDef{
		{Name: "emp_id", Class: schema.ClassInteger},
		{Name: "mgr_id", Class: schema.ClassInteger},
		{Name: "name", Class: schema.ClassChar},
	})
	if err := emp.SetPrimaryKey("emp_id"); err != nil {
		panic(err)
	}
	r := xrand.New(77)
	// Node i's manager is (i-1)/fanout; the root has NULL.
	for i := 0; i < n; i++ {
		mgr := storage.Null()
		if i > 0 {
			mgr = storage.Int(int64((i - 1) / fanout))
		}
		emp.MustInsert(storage.Int(int64(i)), mgr, storage.Str(fmt.Sprintf("E%d-%d", i, r.Intn(10))))
	}
	mgrIdx, err := emp.CreateIndex("ix_mgr", false, "mgr_id")
	if err != nil {
		panic(err)
	}

	// Closure table: (ancestor, descendant) pairs to depth 3, indexed
	// by ancestor.
	closure := db.CreateTable("EmpClosure", []storage.ColumnDef{
		{Name: "ancestor", Class: schema.ClassInteger},
		{Name: "descendant", Class: schema.ClassInteger},
	})
	const depth = 3
	for i := 0; i < n; i++ {
		a := i
		for d := 0; d < depth && a > 0; d++ {
			a = (a - 1) / fanout
			closure.MustInsert(storage.Int(int64(a)), storage.Int(int64(i)))
		}
	}
	ancIdx, err := closure.CreateIndex("ix_anc", false, "ancestor")
	if err != nil {
		panic(err)
	}

	root := int64(3) // a manager with a deep subtree

	// v9 executor: level-wise expansion, each level a sequential scan.
	subtreeSeqScan := func() int {
		frontier := map[int64]bool{root: true}
		total := 0
		for d := 0; d < depth; d++ {
			next := map[int64]bool{}
			emp.Scan(func(id int64, row storage.Row) bool {
				if row[1].IsNull() {
					return true
				}
				if frontier[row[1].I] {
					next[row[0].I] = true
				}
				return true
			})
			total += len(next)
			frontier = next
		}
		return total
	}

	// v11 executor: level-wise expansion through the mgr_id index.
	subtreeIndexed := func() int {
		frontier := []int64{root}
		total := 0
		for d := 0; d < depth; d++ {
			var next []int64
			for _, m := range frontier {
				for _, id := range mgrIdx.Tree().Get(storage.EncodeKey(storage.Int(m))) {
					row, err := emp.Fetch(id)
					if err == nil {
						next = append(next, row[0].I)
					}
				}
			}
			total += len(next)
			frontier = next
		}
		return total
	}

	// Closure-table retrieval: one indexed lookup, then fetch the
	// employee rows like the other executors do.
	subtreeClosure := func() int {
		total := 0
		for _, cid := range ancIdx.Tree().Get(storage.EncodeKey(storage.Int(root))) {
			crow, err := closure.Fetch(cid)
			if err != nil {
				continue
			}
			if _, err := emp.Fetch(crow[1].I); err == nil {
				total++
			}
		}
		return total
	}

	// Sanity: all three agree.
	if a, b, c := subtreeSeqScan(), subtreeIndexed(), subtreeClosure(); a != b || b != c {
		panic(fmt.Sprintf("adjacency executors disagree: %d %d %d", a, b, c))
	}

	v9 := timeIt(5, func() { subtreeSeqScan() })
	v11 := timeIt(20, func() { subtreeIndexed() })
	fixed := timeIt(20, func() { subtreeClosure() })

	return []Measurement{
		{Label: "adjacency v9 (seq-scan levels)", AP: v9, Fixed: fixed, Note: "paper: ~5x vs fixed"},
		{Label: "adjacency v11 (indexed levels)", AP: v11, Fixed: fixed, Note: "paper: ~1.1x vs fixed"},
	}
}
