package experiments

import (
	"fmt"

	"sqlcheck/internal/exec"
	"sqlcheck/internal/parser"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/sqlast"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// Figure8 reproduces the ranking-and-repair performance experiments of
// paper Figure 8: index overuse (a), index underuse (b, c), foreign
// keys (d–f), and enumerated types (g–i).
func Figure8(scale Scale) []Measurement {
	n := 20_000
	if scale == Full {
		n = 120_000
	}
	var out []Measurement
	out = append(out, fig8aIndexOveruse(n))
	out = append(out, fig8bGroupedAggregate(n))
	out = append(out, fig8cLowCardinality(n))
	out = append(out, fig8FKs(n)...)
	out = append(out, fig8Enum(n)...)
	return out
}

func mustExec(db *storage.Database, sql string) *exec.Result {
	res, err := exec.RunSQL(db, sql)
	if err != nil {
		panic(fmt.Sprintf("figure8 %q: %v", sql, err))
	}
	return res
}

// fig8aIndexOveruse: updating five single-column-indexed fields vs
// the repaired design where the workload-unused indexes are dropped
// (paper: 1.663s vs 0.244s, ~7x).
func fig8aIndexOveruse(n int) Measurement {
	build := func(repaired bool) *storage.Database {
		db := storage.NewDatabase("overuse")
		t := db.CreateTable("Items", []storage.ColumnDef{
			{Name: "item_id", Class: schema.ClassInteger},
			{Name: "a", Class: schema.ClassInteger},
			{Name: "b", Class: schema.ClassInteger},
			{Name: "c", Class: schema.ClassInteger},
			{Name: "d", Class: schema.ClassInteger},
			{Name: "e", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey("item_id"); err != nil {
			panic(err)
		}
		r := xrand.New(8)
		for i := 0; i < n; i++ {
			t.MustInsert(storage.Int(int64(i)),
				storage.Int(int64(r.Intn(n))), storage.Int(int64(r.Intn(n))),
				storage.Int(int64(r.Intn(n))), storage.Int(int64(r.Intn(n))),
				storage.Int(int64(r.Intn(n))))
		}
		if repaired {
			// ap-fix dropped the four workload-unused indexes; only
			// the one the queries use remains.
			if _, err := t.CreateIndex("ix_a", false, "a"); err != nil {
				panic(err)
			}
		} else {
			for _, c := range []string{"a", "b", "c", "d", "e"} {
				if _, err := t.CreateIndex("ix_"+c, false, c); err != nil {
					panic(err)
				}
			}
		}
		return db
	}
	apDB := build(false)
	fixDB := build(true)
	// Pre-parsed (prepared-statement style) update pools, one per
	// side and large enough never to wrap: re-applying an update with
	// identical values would skip index maintenance entirely and bias
	// the comparison.
	const runs = 300
	apUpd := updatePool(9, n, runs+2)
	fixUpd := updatePool(10, n, runs+2)
	ap, fixed := timePair(runs, apUpd.next(apDB), fixUpd.next(fixDB))
	return Measurement{Label: "fig8a index overuse: update", AP: ap, Fixed: fixed,
		PaperAP: 1.663, PaperFixed: 0.244, Note: "paper ~7x"}
}

// stmtPool is a pre-parsed statement sequence consumed once.
type stmtPool struct {
	stmts []sqlast.Statement
	k     int
}

func (p *stmtPool) next(db *storage.Database) func() {
	return func() {
		if _, err := exec.Run(db, p.stmts[p.k%len(p.stmts)]); err != nil {
			panic(err)
		}
		p.k++
	}
}

// updatePool builds `count` distinct five-column updates by pk.
func updatePool(seed uint64, n, count int) *stmtPool {
	r := xrand.New(seed)
	p := &stmtPool{stmts: make([]sqlast.Statement, count)}
	for i := range p.stmts {
		p.stmts[i] = parser.Parse(fmt.Sprintf(
			"UPDATE Items SET a = %d, b = %d, c = %d, d = %d, e = %d WHERE item_id = %d",
			r.Intn(n), r.Intn(n), r.Intn(n), r.Intn(n), r.Intn(n), r.Intn(n)))
	}
	return p
}

// fig8bGroupedAggregate: post-grouping aggregation with and without an
// index on the GROUP BY column (paper: 0.331s vs 0.249s, ~1.3x).
// Data is clustered on the group column, as time-ordered data is.
func fig8bGroupedAggregate(n int) Measurement {
	build := func(indexed bool) *storage.Database {
		db := storage.NewDatabase("agg")
		t := db.CreateTable("Events", []storage.ColumnDef{
			{Name: "event_id", Class: schema.ClassInteger},
			{Name: "grp", Class: schema.ClassChar},
			{Name: "amount", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey("event_id"); err != nil {
			panic(err)
		}
		r := xrand.New(12)
		groups := 50
		perGroup := n / groups
		id := 0
		for g := 0; g < groups; g++ {
			for k := 0; k < perGroup; k++ {
				t.MustInsert(storage.Int(int64(id)),
					storage.Str(fmt.Sprintf("G%03d", g)),
					storage.Int(int64(r.Intn(1000))))
				id++
			}
		}
		if indexed {
			if _, err := t.CreateIndex("ix_grp", false, "grp"); err != nil {
				panic(err)
			}
		}
		return db
	}
	apDB := build(false)
	fixDB := build(true)
	q := "SELECT grp, SUM(amount) FROM Events GROUP BY grp"
	ap := timeIt(5, func() { mustExec(apDB, q) })
	fixed := timeIt(5, func() { mustExec(fixDB, q) })
	return Measurement{Label: "fig8b index underuse: grouped agg", AP: ap, Fixed: fixed,
		PaperAP: 0.331, PaperFixed: 0.249, Note: "paper ~1.3x"}
}

// fig8cLowCardinality: scan with a predicate on a 2-value column —
// using the index is SLOWER than the sequential scan (paper: 0.637s
// scan vs 2.516s indexed, ~4x loss). Here AP = the naively "fixed"
// indexed variant, Fixed = the table scan the data rule preserves.
func fig8cLowCardinality(n int) Measurement {
	// The column has ~60 codes uniformly interleaved through the heap
	// (unclustered). A range predicate covering half of them forces
	// the index scan to walk keys in key order, re-reading heap pages
	// once per key — the thrashing that makes unselective index scans
	// lose to a single sequential pass.
	build := func(indexed bool) *storage.Database {
		db := storage.NewDatabase("lowcard")
		t := db.CreateTable("Flags", []storage.ColumnDef{
			{Name: "flag_id", Class: schema.ClassInteger},
			{Name: "code", Class: schema.ClassChar},
			{Name: "v", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey("flag_id"); err != nil {
			panic(err)
		}
		r := xrand.New(13)
		for i := 0; i < n; i++ {
			t.MustInsert(storage.Int(int64(i)),
				storage.Str(fmt.Sprintf("C%03d", r.Intn(60))),
				storage.Int(int64(r.Intn(100))))
		}
		if indexed {
			if _, err := t.CreateIndex("ix_code", false, "code"); err != nil {
				panic(err)
			}
		}
		// A small buffer pool exposes the per-key heap re-reads.
		t.SetBufferPages(8)
		return db
	}
	indexedDB := build(true)
	scanDB := build(false)
	q := "SELECT SUM(v) FROM Flags WHERE code < 'C050'"
	indexTime, scanTime := timePair(7,
		func() { mustExec(indexedDB, q) },
		func() { mustExec(scanDB, q) })
	return Measurement{Label: "fig8c low-cardinality: index is worse", AP: indexTime, Fixed: scanTime,
		PaperAP: 2.516, PaperFixed: 0.637, Note: "paper: index 4x slower"}
}

// fig8FKs: (d) update ± FK check, (e) select ± FK, (f) update by the
// referencing column with and without an index (paper: 142x).
func fig8FKs(n int) []Measurement {
	users := n / 10
	build := func(withFK, withIndex bool) *storage.Database {
		db := storage.NewDatabase("fk")
		ut := db.CreateTable("Customers", []storage.ColumnDef{
			{Name: "cust_id", Class: schema.ClassChar},
			{Name: "name", Class: schema.ClassChar},
		})
		if err := ut.SetPrimaryKey("cust_id"); err != nil {
			panic(err)
		}
		for i := 0; i < users; i++ {
			ut.MustInsert(storage.Str(fmt.Sprintf("C%d", i)), storage.Str(fmt.Sprintf("N%d", i)))
		}
		ot := db.CreateTable("Orders", []storage.ColumnDef{
			{Name: "order_id", Class: schema.ClassInteger},
			{Name: "cust_ref", Class: schema.ClassChar},
			{Name: "amount", Class: schema.ClassInteger},
		})
		if err := ot.SetPrimaryKey("order_id"); err != nil {
			panic(err)
		}
		if withFK {
			if err := ot.AddForeignKey("fk_cust", []string{"cust_ref"}, "Customers", []string{"cust_id"}, "CASCADE"); err != nil {
				panic(err)
			}
		}
		r := xrand.New(14)
		for i := 0; i < n; i++ {
			ot.MustInsert(storage.Int(int64(i)),
				storage.Str(fmt.Sprintf("C%d", r.Intn(users))),
				storage.Int(int64(r.Intn(500))))
		}
		if withIndex {
			if _, err := ot.CreateIndex("ix_cust_ref", false, "cust_ref"); err != nil {
				panic(err)
			}
		}
		return db
	}
	apDB := build(false, false)  // no FK, no index
	fkDB := build(true, false)   // FK, no index
	fkIdxDB := build(true, true) // FK + index on referencing column
	r := xrand.New(15)

	// (d) Update a row's FK column by primary key (pre-parsed pools,
	// one per side, non-wrapping).
	const dRuns = 300
	mkUpdPool := func(seed uint64) *stmtPool {
		rr := xrand.New(seed)
		p := &stmtPool{stmts: make([]sqlast.Statement, dRuns+2)}
		for i := range p.stmts {
			p.stmts[i] = parser.Parse(fmt.Sprintf("UPDATE Orders SET cust_ref = 'C%d' WHERE order_id = %d",
				rr.Intn(users), rr.Intn(n)))
		}
		return p
	}
	dAP, dFix := timePair(dRuns, mkUpdPool(21).next(apDB), mkUpdPool(22).next(fkDB))

	// (e) Select joining the two tables — FK presence is irrelevant to
	// read cost. Fresh instances so the update experiment's buffer
	// state does not leak in.
	eApDB := build(false, false)
	eFkDB := build(true, false)
	mkSelPool := func(seed uint64) *stmtPool {
		rr := xrand.New(seed)
		p := &stmtPool{stmts: make([]sqlast.Statement, 302)}
		for i := range p.stmts {
			p.stmts[i] = parser.Parse(fmt.Sprintf(
				"SELECT o.amount FROM Orders o JOIN Customers c ON c.cust_id = o.cust_ref WHERE o.order_id = %d", rr.Intn(n)))
		}
		return p
	}
	eAP, eFix := timePair(300, mkSelPool(23).next(eApDB), mkSelPool(23).next(eFkDB))

	// (f) Update selecting by the referencing column: sequential scan
	// without an index vs point lookup with one.
	updByRef := func(db *storage.Database) {
		mustExec(db, fmt.Sprintf("UPDATE Orders SET amount = amount + 1 WHERE cust_ref = 'C%d'", r.Intn(users)))
	}
	fAP := timeIt(20, func() { updByRef(fkDB) })
	fFix := timeIt(20, func() { updByRef(fkIdxDB) })

	return []Measurement{
		{Label: "fig8d foreign key: update by pk", AP: dAP, Fixed: dFix,
			PaperAP: 1.884, PaperFixed: 1.74, Note: "paper ~1.1x (not prominent)"},
		{Label: "fig8e foreign key: select join", AP: eAP, Fixed: eFix,
			PaperAP: 1.058, PaperFixed: 1.0, Note: "paper ~1.1x (not prominent)"},
		{Label: "fig8f fk column update with index", AP: fAP, Fixed: fFix,
			PaperAP: 0.852, PaperFixed: 0.006, Note: "paper 142x"},
	}
}

// fig8Enum: the enumerated-types lifecycle (paper Figures 8g–8i).
// AP design: a CHECK-constrained string Role column on a large table.
// Fixed design: a Role lookup table with an integer foreign key.
func fig8Enum(n int) []Measurement {
	buildAP := func() *storage.Database {
		db := storage.NewDatabase("enum-ap")
		t := db.CreateTable("Staff", []storage.ColumnDef{
			{Name: "staff_id", Class: schema.ClassInteger},
			{Name: "role", Class: schema.ClassChar},
			{Name: "score", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey("staff_id"); err != nil {
			panic(err)
		}
		r := xrand.New(16)
		for i := 0; i < n; i++ {
			t.MustInsert(storage.Int(int64(i)),
				storage.Str(fmt.Sprintf("R%d", i%3+1)),
				storage.Int(int64(r.Intn(100))))
		}
		if err := t.AddCheckInList("staff_role_check", "role", []string{"R1", "R2", "R3"}); err != nil {
			panic(err)
		}
		if _, err := t.CreateIndex("ix_role", false, "role"); err != nil {
			panic(err)
		}
		return db
	}
	buildFixed := func() *storage.Database {
		db := storage.NewDatabase("enum-fixed")
		rt := db.CreateTable("Roles", []storage.ColumnDef{
			{Name: "role_id", Class: schema.ClassInteger},
			{Name: "role_name", Class: schema.ClassChar},
		})
		if err := rt.SetPrimaryKey("role_id"); err != nil {
			panic(err)
		}
		for i := 1; i <= 3; i++ {
			rt.MustInsert(storage.Int(int64(i)), storage.Str(fmt.Sprintf("R%d", i)))
		}
		t := db.CreateTable("Staff", []storage.ColumnDef{
			{Name: "staff_id", Class: schema.ClassInteger},
			{Name: "role_id", Class: schema.ClassInteger},
			{Name: "score", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey("staff_id"); err != nil {
			panic(err)
		}
		if err := t.AddForeignKey("fk_role", []string{"role_id"}, "Roles", []string{"role_id"}, "RESTRICT"); err != nil {
			panic(err)
		}
		r := xrand.New(16)
		for i := 0; i < n; i++ {
			t.MustInsert(storage.Int(int64(i)),
				storage.Int(int64(i%3+1)),
				storage.Int(int64(r.Intn(100))))
		}
		if _, err := t.CreateIndex("ix_role_id", false, "role_id"); err != nil {
			panic(err)
		}
		return db
	}

	// (g) Rename role R2 -> R5: constraint surgery + mass update vs a
	// one-row lookup-table update (paper: 1314.53s vs 0.003s).
	gAP := timeOnce(3, func() func() {
		db := buildAP()
		return func() {
			mustExec(db, "ALTER TABLE Staff DROP CONSTRAINT IF EXISTS staff_role_check")
			mustExec(db, "UPDATE Staff SET role = 'R5' WHERE role = 'R2'")
			mustExec(db, "ALTER TABLE Staff ADD CONSTRAINT staff_role_check CHECK (role IN ('R1','R5','R3'))")
		}
	})
	gFix := timeOnce(3, func() func() {
		db := buildFixed()
		return func() {
			mustExec(db, "UPDATE Roles SET role_name = 'R5' WHERE role_name = 'R2'")
		}
	})

	// (h) Admit a new permitted value R4: re-validate the CHECK over
	// the whole table vs inserting one lookup row (paper: 2.249s vs
	// 0.001s).
	hAP := timeOnce(3, func() func() {
		db := buildAP()
		return func() {
			mustExec(db, "ALTER TABLE Staff DROP CONSTRAINT IF EXISTS staff_role_check")
			mustExec(db, "ALTER TABLE Staff ADD CONSTRAINT staff_role_check CHECK (role IN ('R1','R2','R3','R4'))")
		}
	})
	hFix := timeOnce(3, func() func() {
		db := buildFixed()
		return func() {
			mustExec(db, "INSERT INTO Roles (role_id, role_name) VALUES (4, 'R4')")
		}
	})

	// (i) Select by role: both designs are indexed; the fixed design
	// resolves the role name through the lookup table once and then
	// filters by the integer key — how lookup tables are used in
	// practice (paper: 0.003s vs 0.003s).
	apDB := buildAP()
	fixDB := buildFixed()
	iAP, iFix := timePair(50, func() {
		mustExec(apDB, "SELECT COUNT(*) FROM Staff WHERE role = 'R2'")
	}, func() {
		mustExec(fixDB, "SELECT role_id FROM Roles WHERE role_name = 'R2'")
		mustExec(fixDB, "SELECT COUNT(*) FROM Staff WHERE role_id = 2")
	})

	return []Measurement{
		{Label: "fig8g enum types: rename value", AP: gAP, Fixed: gFix,
			PaperAP: 1314.53, PaperFixed: 0.003, Note: "paper >1000x"},
		{Label: "fig8h enum types: add value", AP: hAP, Fixed: hFix,
			PaperAP: 2.249, PaperFixed: 0.001, Note: "paper >1000x"},
		{Label: "fig8i enum types: select", AP: iAP, Fixed: iFix,
			PaperAP: 0.003, PaperFixed: 0.003, Note: "paper ~1x"},
	}
}
