// Package experiments regenerates every table and figure of the
// paper's evaluation (§8) on the in-repo substrates. Each experiment
// returns a structured result with a text rendering; cmd/apbench
// prints them and bench_test.go wraps them as benchmarks. Absolute
// numbers differ from the paper (the substrate is this repository's
// engine, not PostgreSQL on the authors' hardware); the tracked claim
// per experiment is the *shape* — who wins and by roughly what factor
// (DESIGN.md §4 indexes the artifacts).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Measurement is one AP-vs-fixed timing comparison.
type Measurement struct {
	Label string
	// AP and Fixed are mean execution times of the anti-pattern and
	// repaired designs.
	AP, Fixed time.Duration
	// PaperAP and PaperFixed record the paper's reported seconds for
	// reference (0 when the paper gives only a factor).
	PaperAP, PaperFixed float64
	// Note carries shape expectations (e.g. "fix should win >100x").
	Note string
}

// Factor returns AP time / fixed time (how much faster the fix is).
func (m Measurement) Factor() float64 {
	if m.Fixed <= 0 {
		return 0
	}
	return float64(m.AP) / float64(m.Fixed)
}

// Fprint renders measurements as an aligned table.
func Fprint(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-38s %14s %14s %10s  %s\n", "experiment", "AP", "fixed", "speedup", "paper")
	for _, m := range ms {
		paper := ""
		if m.PaperAP > 0 && m.PaperFixed > 0 {
			paper = fmt.Sprintf("%.3fs/%.3fs (%.0fx)", m.PaperAP, m.PaperFixed, m.PaperAP/m.PaperFixed)
		} else if m.Note != "" {
			paper = m.Note
		}
		fmt.Fprintf(w, "%-38s %14s %14s %9.1fx  %s\n",
			m.Label, m.AP.Round(time.Microsecond), m.Fixed.Round(time.Microsecond), m.Factor(), paper)
	}
	fmt.Fprintln(w)
}

// timeIt runs f repeatedly and returns the mean duration. It runs one
// untimed warm-up first, then `runs` timed iterations (the paper
// reports the average of five runs).
func timeIt(runs int, f func()) time.Duration {
	if runs <= 0 {
		runs = 5
	}
	f() // warm-up
	start := time.Now()
	for i := 0; i < runs; i++ {
		f()
	}
	return time.Since(start) / time.Duration(runs)
}

// timePair measures two alternatives by interleaving their runs so
// that clock drift, GC pauses, and frequency scaling hit both sides
// equally. Both get one warm-up call.
func timePair(runs int, fa, fb func()) (da, db time.Duration) {
	if runs <= 0 {
		runs = 100
	}
	fa()
	fb()
	for i := 0; i < runs; i++ {
		start := time.Now()
		fa()
		da += time.Since(start)
		start = time.Now()
		fb()
		db += time.Since(start)
	}
	return da / time.Duration(runs), db / time.Duration(runs)
}

// timeOnce measures a single destructive operation (setup must provide
// a fresh state per call): it runs setup+op `runs` times, timing only
// op.
func timeOnce(runs int, setup func() func()) time.Duration {
	if runs <= 0 {
		runs = 3
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		op := setup()
		start := time.Now()
		op()
		total += time.Since(start)
	}
	return total / time.Duration(runs)
}

// Scale selects experiment sizes: benchmarks default to Small so the
// suite stays fast; apbench uses Full for paper-shaped magnitudes.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)
