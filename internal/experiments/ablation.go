package experiments

import (
	"fmt"
	"io"

	"sqlcheck/internal/core"
	"sqlcheck/internal/rules"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
)

// DataRulesAblation isolates the paper's central design claim (§4.2):
// augmenting query analysis with data analysis removes both false
// positives and false negatives that no amount of query-side cleverness
// can fix. Two adversarial scenarios:
//
//  1. FP scenario — a free-text address column searched with LIKE looks
//     like a multi-valued attribute to query analysis; its data profile
//     (prose, not delimiter lists) refutes it.
//  2. FN scenario — a column that genuinely stores comma-separated
//     lists but is only ever read whole (list handling lives in
//     application code); only the data profile reveals it.
type DataRulesAblation struct {
	// QueryOnlyFP / WithDataFP: was the address column flagged?
	QueryOnlyFP, WithDataFP bool
	// QueryOnlyFN / WithDataFN: was the true list column missed?
	QueryOnlyFN, WithDataFN bool
}

// RunDataRulesAblation executes both scenarios.
func RunDataRulesAblation() DataRulesAblation {
	var res DataRulesAblation

	// --- Scenario 1: free-text column, LIKE search. ---
	fpDB := storage.NewDatabase("fp")
	addr := fpDB.CreateTable("customers", []storage.ColumnDef{
		{Name: "customer_id", Class: schema.ClassInteger},
		{Name: "directions", Class: schema.ClassText},
	})
	if err := addr.SetPrimaryKey("customer_id"); err != nil {
		panic(err)
	}
	for i := 0; i < 80; i++ {
		addr.MustInsert(storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("%d Long Winding Road, Apt %d, Springfield", i+1, i%9+1)))
	}
	// The query pattern alone is ambiguous: word-boundary search on a
	// text column.
	fpQuery := `SELECT customer_id FROM customers WHERE directions LIKE '[[:<:]]Springfield[[:>:]]'`

	queryOnly := core.DetectSQL(
		"CREATE TABLE customers (customer_id INT PRIMARY KEY, directions TEXT);\n"+fpQuery,
		nil, core.DefaultOptions())
	res.QueryOnlyFP = hasRule(queryOnly, rules.IDMultiValuedAttribute)

	withData := core.DetectSQL(fpQuery, fpDB, core.DefaultOptions())
	res.WithDataFP = hasRule(withData, rules.IDMultiValuedAttribute)

	// --- Scenario 2: genuine list column read whole. ---
	fnDB := storage.NewDatabase("fn")
	lists := fnDB.CreateTable("carts", []storage.ColumnDef{
		{Name: "cart_id", Class: schema.ClassInteger},
		{Name: "product_ids", Class: schema.ClassText},
	})
	if err := lists.SetPrimaryKey("cart_id"); err != nil {
		panic(err)
	}
	for i := 0; i < 80; i++ {
		lists.MustInsert(storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("P%d,P%d,P%d", i, i+3, i+9)))
	}
	// The application splits the list client-side; SQL only fetches it.
	fnQuery := `SELECT product_ids FROM carts WHERE cart_id = 7`

	queryOnly = core.DetectSQL(
		"CREATE TABLE carts (cart_id INT PRIMARY KEY, product_ids TEXT);\n"+fnQuery,
		nil, core.DefaultOptions())
	res.QueryOnlyFN = !hasRule(queryOnly, rules.IDMultiValuedAttribute)

	withData = core.DetectSQL(fnQuery, fnDB, core.DefaultOptions())
	res.WithDataFN = !hasRule(withData, rules.IDMultiValuedAttribute)

	return res
}

func hasRule(res *core.Result, ruleID string) bool {
	for _, f := range res.Findings {
		if f.RuleID == ruleID {
			return true
		}
	}
	return false
}

// Fprint renders the ablation.
func (a DataRulesAblation) Fprint(w io.Writer) {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintln(w, "Data-analysis ablation (§4.2): MVA detection on adversarial data")
	fmt.Fprintf(w, "address column (no real AP):  query-only flags it: %-3s  with data: %s\n",
		yn(a.QueryOnlyFP), yn(a.WithDataFP))
	fmt.Fprintf(w, "true list, read whole (AP):   query-only misses it: %-3s with data misses it: %s\n",
		yn(a.QueryOnlyFN), yn(a.WithDataFN))
	fmt.Fprintln(w, "(paper: data rules remove both failure modes)")
	fmt.Fprintln(w)
}
