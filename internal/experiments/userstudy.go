package experiments

import (
	"fmt"
	"io"
	"strings"

	"sqlcheck/internal/core"
	"sqlcheck/internal/corpus"
	"sqlcheck/internal/fix"
	"sqlcheck/internal/xrand"
)

// UserStudyResult reproduces the §8.3 user-study pipeline aggregates:
// statements written, APs detected, fixes suggested, and the
// applied/ambiguous/incorrect split that yields the paper's 51%
// (and 67% counting ambiguous) efficacy.
type UserStudyResult struct {
	Participants int
	Statements   int
	Detected     int
	Considered   int
	Applied      int
	Ambiguous    int
	Rejected     int
}

// Efficacy is applied / detected-and-considered.
func (r UserStudyResult) Efficacy() float64 {
	if r.Considered == 0 {
		return 0
	}
	return float64(r.Applied) / float64(r.Considered)
}

// EfficacyWithAmbiguous also credits ambiguous fixes (the paper's 67%).
func (r UserStudyResult) EfficacyWithAmbiguous() float64 {
	if r.Considered == 0 {
		return 0
	}
	return float64(r.Applied+r.Ambiguous) / float64(r.Considered)
}

// UserStudyReport runs detection + repair over each simulated
// participant's statements and applies the acceptance model: automated
// fixes are applied unless the participant judges them incorrect for
// the application's needs; textual fixes are ambiguous half the time.
func UserStudyReport() UserStudyResult {
	parts := corpus.UserStudy(corpus.UserStudyOptions{})
	r := xrand.New(99)
	res := UserStudyResult{Participants: len(parts)}
	for _, p := range parts {
		res.Statements += len(p.Statements)
		det := core.DetectSQL(strings.Join(p.Statements, ";\n"), nil, core.DefaultOptions())
		engine := fix.New(det.Context)
		res.Detected += len(det.Findings)
		if !p.Engaged {
			continue
		}
		res.Considered += len(det.Findings)
		for _, f := range det.Findings {
			fx := engine.Repair(f)
			if fx.Automated() {
				// Unambiguous rewrites are mostly accepted; the rest
				// are judged incorrect for the application's needs.
				if r.Bool(0.75) {
					res.Applied++
				} else {
					res.Rejected++
				}
				continue
			}
			// Textual guidance: followed, found ambiguous, or judged
			// inapplicable (the paper's 31/60 split of the ignored
			// fixes).
			switch {
			case r.Bool(0.40):
				res.Applied++
			case r.Bool(0.5):
				res.Ambiguous++
			default:
				res.Rejected++
			}
		}
	}
	return res
}

// Fprint renders the study aggregates.
func (r UserStudyResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "User study (§8.3): simulated fix-acceptance pipeline")
	fmt.Fprintf(w, "participants        %5d  (paper 23)\n", r.Participants)
	fmt.Fprintf(w, "statements          %5d  (paper 987)\n", r.Statements)
	fmt.Fprintf(w, "APs detected        %5d  (paper 207)\n", r.Detected)
	fmt.Fprintf(w, "considered          %5d  (paper 187)\n", r.Considered)
	fmt.Fprintf(w, "fixes applied       %5d  (paper 96)\n", r.Applied)
	fmt.Fprintf(w, "ambiguous           %5d  (paper 31)\n", r.Ambiguous)
	fmt.Fprintf(w, "rejected            %5d  (paper 60)\n", r.Rejected)
	fmt.Fprintf(w, "efficacy            %5.0f%% (paper 51%%)\n", 100*r.Efficacy())
	fmt.Fprintf(w, "efficacy+ambiguous  %5.0f%% (paper 67%%)\n\n", 100*r.EfficacyWithAmbiguous())
}
