package experiments

import (
	"fmt"

	"sqlcheck/internal/corpus"
	"sqlcheck/internal/exec"
	"sqlcheck/internal/storage"
)

// Figure3 reproduces the multi-valued attribute experiment (paper
// Figure 3): the three GlobaLeaks tasks executed against the AP design
// (comma-separated User_IDs column) and the fixed design (Hosting
// intersection table). The paper reports 636x / 256x / 193x speedups.
func Figure3(scale Scale) []Measurement {
	opts := corpus.GlobaLeaksOptions{Tenants: 800, Users: 2400, UsersPerTenant: 3}
	if scale == Full {
		opts = corpus.GlobaLeaksOptions{Tenants: 8000, Users: 24000, UsersPerTenant: 3}
	}
	mva := corpus.GlobaLeaksMVA(opts)
	fixed := corpus.GlobaLeaksFixed(opts)

	mustRun := func(db *storage.Database, sql string) {
		if _, err := exec.RunSQL(db, sql); err != nil {
			panic(fmt.Sprintf("figure3 %q: %v", sql, err))
		}
	}
	probeUser := fmt.Sprintf("U%d", opts.Users/2)
	probeTenant := fmt.Sprintf("T%d", opts.Tenants/2)

	// Task #1: list the tenants a user is associated with.
	t1AP := timeIt(5, func() {
		mustRun(mva, fmt.Sprintf(
			`SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]%s[[:>:]]'`, probeUser))
	})
	t1Fix := timeIt(5, func() {
		mustRun(fixed, fmt.Sprintf(
			`SELECT T.* FROM Hosting AS H JOIN Tenants AS T ON H.Tenant_ID = T.Tenant_ID WHERE H.User_ID = '%s'`, probeUser))
	})

	// Task #2: retrieve the users served by a tenant (expression join
	// vs indexed equi-join).
	t2AP := timeIt(5, func() {
		mustRun(mva, fmt.Sprintf(
			`SELECT u.* FROM Tenants t JOIN Users u ON t.User_IDs LIKE '[[:<:]]' || u.User_ID || '[[:>:]]' WHERE t.Tenant_ID = '%s'`, probeTenant))
	})
	t2Fix := timeIt(5, func() {
		mustRun(fixed, fmt.Sprintf(
			`SELECT u.* FROM Hosting h JOIN Users u ON u.User_ID = h.User_ID WHERE h.Tenant_ID = '%s'`, probeTenant))
	})

	// Task #3: membership check (is the user hosted anywhere?).
	t3AP := timeIt(5, func() {
		mustRun(mva, fmt.Sprintf(
			`SELECT COUNT(*) FROM Tenants WHERE User_IDs LIKE '%%%s%%'`, probeUser))
	})
	t3Fix := timeIt(5, func() {
		mustRun(fixed, fmt.Sprintf(
			`SELECT COUNT(*) FROM Hosting WHERE User_ID = '%s'`, probeUser))
	})

	return []Measurement{
		{Label: "fig3a MVA task1 user->tenants", AP: t1AP, Fixed: t1Fix, PaperAP: 0.762, PaperFixed: 0.003, Note: "paper 636x"},
		{Label: "fig3b MVA task2 tenant->users", AP: t2AP, Fixed: t2Fix, PaperAP: 0.772, PaperFixed: 0.004, Note: "paper 256x"},
		{Label: "fig3c MVA task3 membership", AP: t3AP, Fixed: t3Fix, PaperAP: 0.636, PaperFixed: 0.001, Note: "paper 193x"},
	}
}
