package sqlast

import (
	"strings"
)

// SQL renders a statement back to SQL text. The output is normalized
// (single spaces, upper-case keywords) rather than byte-identical to
// the input; ap-fix uses it to emit repaired statements (paper §6.1,
// "Tosql").
func SQL(stmt Statement) string {
	var b strings.Builder
	writeStatement(&b, stmt)
	return b.String()
}

func writeStatement(b *strings.Builder, stmt Statement) {
	switch s := stmt.(type) {
	case *SelectStatement:
		writeSelect(b, s)
	case *InsertStatement:
		writeInsert(b, s)
	case *UpdateStatement:
		writeUpdate(b, s)
	case *DeleteStatement:
		writeDelete(b, s)
	case *CreateTableStatement:
		writeCreateTable(b, s)
	case *CreateIndexStatement:
		writeCreateIndex(b, s)
	case *AlterTableStatement:
		writeAlterTable(b, s)
	case *DropStatement:
		b.WriteString("DROP ")
		if s.DropKind == KindDropIndex {
			b.WriteString("INDEX ")
		} else {
			b.WriteString("TABLE ")
		}
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.Name)
	default:
		b.WriteString(stmt.Raw())
	}
}

func writeSelect(b *strings.Builder, s *SelectStatement) {
	if len(s.With) > 0 {
		b.WriteString("WITH ")
		for i, c := range s.With {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Recursive {
				b.WriteString("RECURSIVE ")
			}
			b.WriteString(c.Name)
			b.WriteString(" AS (")
			writeSelect(b, c.Select)
			b.WriteString(")")
		}
		b.WriteString(" ")
	}
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			if it.StarTable != "" {
				b.WriteString(it.StarTable)
				b.WriteString(".")
			}
			b.WriteString("*")
		} else {
			b.WriteString(ExprSQL(it.Expr))
		}
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			writeTableRef(b, t)
		}
	}
	for _, j := range s.Joins {
		b.WriteString(" ")
		if j.Kind != "" && j.Kind != "INNER" {
			b.WriteString(string(j.Kind))
			b.WriteString(" ")
		}
		b.WriteString("JOIN ")
		writeTableRef(b, j.Table)
		if j.On != nil {
			b.WriteString(" ON ")
			b.WriteString(ExprSQL(j.On))
		} else if len(j.Using) > 0 {
			b.WriteString(" USING (")
			b.WriteString(strings.Join(j.Using, ", "))
			b.WriteString(")")
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(ExprSQL(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprSQL(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(ExprSQL(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprSQL(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(ExprSQL(s.Limit))
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		b.WriteString(ExprSQL(s.Offset))
	}
	for _, u := range s.Setop {
		b.WriteString(" UNION ")
		writeSelect(b, u)
	}
}

func writeTableRef(b *strings.Builder, t TableRef) {
	if t.Sub != nil {
		b.WriteString("(")
		writeSelect(b, t.Sub)
		b.WriteString(")")
	} else {
		b.WriteString(t.Name)
	}
	if t.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(t.Alias)
	}
}

func writeInsert(b *strings.Builder, s *InsertStatement) {
	if s.OrReplace {
		b.WriteString("REPLACE INTO ")
	} else {
		b.WriteString("INSERT INTO ")
	}
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	if s.Select != nil {
		b.WriteString(" ")
		writeSelect(b, s.Select)
		return
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprSQL(e))
		}
		b.WriteString(")")
	}
}

func writeUpdate(b *strings.Builder, s *UpdateStatement) {
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	if s.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(s.Alias)
	}
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(columnRefSQL(&a.Column))
		b.WriteString(" = ")
		b.WriteString(ExprSQL(a.Value))
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(ExprSQL(s.Where))
	}
}

func writeDelete(b *strings.Builder, s *DeleteStatement) {
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(ExprSQL(s.Where))
	}
}

func writeCreateTable(b *strings.Builder, s *CreateTableStatement) {
	b.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(s.Name)
	if s.AsSelect != nil {
		b.WriteString(" AS ")
		writeSelect(b, s.AsSelect)
		return
	}
	b.WriteString(" (")
	first := true
	for _, c := range s.Columns {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(ColumnDefSQL(c))
	}
	for _, tc := range s.Constraints {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(constraintSQL(tc))
	}
	b.WriteString(")")
}

// ColumnDefSQL renders a single column definition.
func ColumnDefSQL(c ColumnDef) string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteString(" ")
	b.WriteString(c.Type)
	if len(c.TypeParams) > 0 {
		b.WriteString("(")
		b.WriteString(strings.Join(c.TypeParams, ", "))
		b.WriteString(")")
	}
	if c.NotNull {
		b.WriteString(" NOT NULL")
	}
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.AutoIncrement {
		b.WriteString(" AUTO_INCREMENT")
	}
	if c.Unique {
		b.WriteString(" UNIQUE")
	}
	if c.Default != nil {
		b.WriteString(" DEFAULT ")
		b.WriteString(ExprSQL(c.Default))
	}
	if c.References != nil {
		b.WriteString(" REFERENCES ")
		b.WriteString(c.References.Table)
		if len(c.References.Columns) > 0 {
			b.WriteString("(")
			b.WriteString(strings.Join(c.References.Columns, ", "))
			b.WriteString(")")
		}
		if c.References.OnDelete != "" {
			b.WriteString(" ON DELETE ")
			b.WriteString(c.References.OnDelete)
		}
	}
	if c.Check != nil {
		b.WriteString(" CHECK (")
		b.WriteString(ExprSQL(c.Check))
		b.WriteString(")")
	}
	return b.String()
}

func constraintSQL(tc TableConstraint) string {
	var b strings.Builder
	if tc.Name != "" {
		b.WriteString("CONSTRAINT ")
		b.WriteString(tc.Name)
		b.WriteString(" ")
	}
	b.WriteString(tc.CKind)
	switch tc.CKind {
	case "PRIMARY KEY", "UNIQUE":
		b.WriteString(" (")
		b.WriteString(strings.Join(tc.Columns, ", "))
		b.WriteString(")")
	case "FOREIGN KEY":
		b.WriteString(" (")
		b.WriteString(strings.Join(tc.Columns, ", "))
		b.WriteString(") REFERENCES ")
		if tc.Ref != nil {
			b.WriteString(tc.Ref.Table)
			if len(tc.Ref.Columns) > 0 {
				b.WriteString("(")
				b.WriteString(strings.Join(tc.Ref.Columns, ", "))
				b.WriteString(")")
			}
			if tc.Ref.OnDelete != "" {
				b.WriteString(" ON DELETE ")
				b.WriteString(tc.Ref.OnDelete)
			}
		}
	case "CHECK":
		b.WriteString(" (")
		b.WriteString(ExprSQL(tc.Check))
		b.WriteString(")")
	}
	return b.String()
}

func writeCreateIndex(b *strings.Builder, s *CreateIndexStatement) {
	b.WriteString("CREATE ")
	if s.Unique {
		b.WriteString("UNIQUE ")
	}
	b.WriteString("INDEX ")
	b.WriteString(s.Name)
	b.WriteString(" ON ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	b.WriteString(strings.Join(s.Columns, ", "))
	b.WriteString(")")
}

func writeAlterTable(b *strings.Builder, s *AlterTableStatement) {
	b.WriteString("ALTER TABLE ")
	b.WriteString(s.Table)
	switch s.Action {
	case AlterAddColumn:
		b.WriteString(" ADD COLUMN ")
		b.WriteString(ColumnDefSQL(*s.Column))
	case AlterDropColumn:
		b.WriteString(" DROP COLUMN ")
		b.WriteString(s.DropColumn)
	case AlterAddConstraint:
		b.WriteString(" ADD ")
		b.WriteString(constraintSQL(*s.Constraint))
	case AlterDropConstraint:
		b.WriteString(" DROP CONSTRAINT ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.DropName)
	case AlterRename:
		b.WriteString(" RENAME TO ")
		b.WriteString(s.NewName)
	default:
		// Preserve the unparsed tail of the original text.
		b.WriteString(" ")
		b.WriteString(rawTail(s.Raw()))
	}
}

// rawTail returns the text after "ALTER TABLE <name>" in the original
// statement, best-effort.
func rawTail(raw string) string {
	fields := strings.Fields(raw)
	if len(fields) > 3 {
		return strings.Join(fields[3:], " ")
	}
	return ""
}

// ExprSQL renders an expression to SQL text.
func ExprSQL(e Expr) string {
	if e == nil {
		return ""
	}
	switch x := e.(type) {
	case *ColumnRef:
		return columnRefSQL(x)
	case *Literal:
		switch x.LitKind {
		case "string":
			return "'" + strings.ReplaceAll(x.Value, "'", "''") + "'"
		case "null":
			return "NULL"
		default:
			return x.Value
		}
	case *Placeholder:
		return x.Text
	case *BinaryExpr:
		op := x.Op
		if x.Not {
			switch op {
			case "IS":
				op = "IS NOT"
			default:
				op = "NOT " + op
			}
		}
		return ExprSQL(x.Left) + " " + op + " " + ExprSQL(x.Right)
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "NOT " + ExprSQL(x.X)
		}
		return x.Op + ExprSQL(x.X)
	case *FuncCall:
		var args []string
		if x.Star {
			args = []string{"*"}
		}
		for _, a := range x.Args {
			args = append(args, ExprSQL(a))
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Name + "(" + d + strings.Join(args, ", ") + ")"
	case *ExprList:
		var items []string
		for _, it := range x.Items {
			items = append(items, ExprSQL(it))
		}
		return "(" + strings.Join(items, ", ") + ")"
	case *SubQuery:
		return "(" + SQL(x.Select) + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for i := range x.Whens {
			b.WriteString(" WHEN ")
			b.WriteString(ExprSQL(x.Whens[i]))
			b.WriteString(" THEN ")
			if i < len(x.Thens) {
				b.WriteString(ExprSQL(x.Thens[i]))
			}
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			b.WriteString(ExprSQL(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *Raw:
		var parts []string
		for _, t := range x.Tokens {
			parts = append(parts, t.Text)
		}
		return strings.Join(parts, " ")
	default:
		return ""
	}
}

func columnRefSQL(c *ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}
