package sqlast

import (
	"strings"
	"testing"
)

func TestStatementKindNames(t *testing.T) {
	cases := map[StatementKind]string{
		KindSelect:        "SELECT",
		KindInsert:        "INSERT",
		KindCreateTable:   "CREATE TABLE",
		KindAlterTable:    "ALTER TABLE",
		KindOther:         "OTHER",
		StatementKind(99): "OTHER",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSerializeSelectAllClauses(t *testing.T) {
	sel := &SelectStatement{
		Distinct: true,
		With: []CTE{{Name: "r", Recursive: true, Select: &SelectStatement{
			Items: []SelectItem{{Expr: &Literal{LitKind: "number", Value: "1"}}},
		}}},
		Items: []SelectItem{
			{Expr: &ColumnRef{Table: "t", Column: "a"}, Alias: "x"},
			{Star: true, StarTable: "u"},
		},
		From: []TableRef{{Name: "t", Alias: "tt"}},
		Joins: []Join{
			{Kind: "LEFT", Table: TableRef{Name: "u"},
				On: &BinaryExpr{Op: "=", Left: &ColumnRef{Table: "t", Column: "id"}, Right: &ColumnRef{Table: "u", Column: "tid"}}},
			{Kind: "INNER", Table: TableRef{Name: "v"}, Using: []string{"k1", "k2"}},
		},
		Where:   &BinaryExpr{Op: "IS", Not: true, Left: &ColumnRef{Column: "a"}, Right: &Literal{LitKind: "null", Value: "NULL"}},
		GroupBy: []Expr{&ColumnRef{Column: "a"}},
		Having:  &BinaryExpr{Op: ">", Left: &FuncCall{Name: "COUNT", Star: true}, Right: &Literal{LitKind: "number", Value: "1"}},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "a"}, Desc: true}},
		Limit:   &Literal{LitKind: "number", Value: "10"},
		Offset:  &Literal{LitKind: "number", Value: "5"},
		Setop:   []*SelectStatement{{Items: []SelectItem{{Star: true}}, From: []TableRef{{Name: "w"}}}},
	}
	got := SQL(sel)
	for _, want := range []string{
		"WITH RECURSIVE r AS (SELECT 1)",
		"SELECT DISTINCT t.a AS x, u.*",
		"FROM t AS tt",
		"LEFT JOIN u ON t.id = u.tid",
		"JOIN v USING (k1, k2)",
		"WHERE a IS NOT NULL",
		"GROUP BY a",
		"HAVING COUNT(*) > 1",
		"ORDER BY a DESC",
		"LIMIT 10 OFFSET 5",
		"UNION SELECT * FROM w",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("SQL() missing %q:\n%s", want, got)
		}
	}
}

func TestSerializeSubquerySource(t *testing.T) {
	sel := &SelectStatement{
		Items: []SelectItem{{Star: true}},
		From: []TableRef{{Sub: &SelectStatement{
			Items: []SelectItem{{Expr: &ColumnRef{Column: "x"}}},
			From:  []TableRef{{Name: "inner_t"}},
		}, Alias: "s"}},
	}
	got := SQL(sel)
	if !strings.Contains(got, "FROM (SELECT x FROM inner_t) AS s") {
		t.Errorf("got %q", got)
	}
}

func TestSerializeInsertVariants(t *testing.T) {
	ins := &InsertStatement{Table: "t", Columns: []string{"a", "b"},
		Rows: [][]Expr{
			{&Literal{LitKind: "number", Value: "1"}, &Literal{LitKind: "string", Value: "x"}},
			{&Literal{LitKind: "number", Value: "2"}, &Literal{LitKind: "null", Value: "NULL"}},
		}}
	got := SQL(ins)
	if got != "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)" {
		t.Errorf("got %q", got)
	}
	rep := &InsertStatement{Table: "t", OrReplace: true, Rows: [][]Expr{{&Literal{LitKind: "number", Value: "1"}}}}
	if !strings.HasPrefix(SQL(rep), "REPLACE INTO t") {
		t.Errorf("got %q", SQL(rep))
	}
	insSel := &InsertStatement{Table: "t", Select: &SelectStatement{
		Items: []SelectItem{{Star: true}}, From: []TableRef{{Name: "src"}}}}
	if !strings.Contains(SQL(insSel), "INSERT INTO t SELECT * FROM src") {
		t.Errorf("got %q", SQL(insSel))
	}
}

func TestSerializeUpdateDelete(t *testing.T) {
	up := &UpdateStatement{Table: "t", Alias: "x",
		Set:   []Assignment{{Column: ColumnRef{Column: "a"}, Value: &Literal{LitKind: "number", Value: "1"}}},
		Where: &BinaryExpr{Op: "=", Left: &ColumnRef{Column: "id"}, Right: &Literal{LitKind: "number", Value: "2"}}}
	if got := SQL(up); got != "UPDATE t AS x SET a = 1 WHERE id = 2" {
		t.Errorf("got %q", got)
	}
	del := &DeleteStatement{Table: "t"}
	if got := SQL(del); got != "DELETE FROM t" {
		t.Errorf("got %q", got)
	}
}

func TestSerializeCreateTableFull(t *testing.T) {
	ct := &CreateTableStatement{
		Name:        "t",
		IfNotExists: true,
		Columns: []ColumnDef{
			{Name: "id", Type: "INT", PrimaryKey: true, AutoIncrement: true},
			{Name: "v", Type: "VARCHAR", TypeParams: []string{"10"}, NotNull: true, Unique: true,
				Default: &Literal{LitKind: "string", Value: "x"}},
			{Name: "r", Type: "INT", References: &ForeignKeyRef{Table: "u", Columns: []string{"id"}, OnDelete: "CASCADE"}},
			{Name: "c", Type: "INT", Check: &BinaryExpr{Op: ">", Left: &ColumnRef{Column: "c"}, Right: &Literal{LitKind: "number", Value: "0"}}},
		},
		Constraints: []TableConstraint{
			{Name: "pk2", CKind: "UNIQUE", Columns: []string{"v", "r"}},
			{CKind: "FOREIGN KEY", Columns: []string{"r"}, Ref: &ForeignKeyRef{Table: "u", Columns: []string{"id"}, OnDelete: "SET NULL"}},
			{Name: "ck", CKind: "CHECK", Check: &BinaryExpr{Op: "IN",
				Left:  &ColumnRef{Column: "v"},
				Right: &ExprList{Items: []Expr{&Literal{LitKind: "string", Value: "a"}}}}},
		},
	}
	got := SQL(ct)
	for _, want := range []string{
		"CREATE TABLE IF NOT EXISTS t",
		"id INT PRIMARY KEY AUTO_INCREMENT",
		"v VARCHAR(10) NOT NULL UNIQUE DEFAULT 'x'",
		"r INT REFERENCES u(id) ON DELETE CASCADE",
		"c INT CHECK (c > 0)",
		"CONSTRAINT pk2 UNIQUE (v, r)",
		"FOREIGN KEY (r) REFERENCES u(id) ON DELETE SET NULL",
		"CONSTRAINT ck CHECK (v IN ('a'))",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestSerializeCreateTableAsSelect(t *testing.T) {
	ct := &CreateTableStatement{Name: "t", AsSelect: &SelectStatement{
		Items: []SelectItem{{Star: true}}, From: []TableRef{{Name: "src"}}}}
	if got := SQL(ct); got != "CREATE TABLE t AS SELECT * FROM src" {
		t.Errorf("got %q", got)
	}
}

func TestSerializeAlterAndDrop(t *testing.T) {
	cases := []struct {
		stmt Statement
		want string
	}{
		{&AlterTableStatement{Table: "t", Action: AlterAddColumn,
			Column: &ColumnDef{Name: "c", Type: "INT"}}, "ALTER TABLE t ADD COLUMN c INT"},
		{&AlterTableStatement{Table: "t", Action: AlterDropColumn, DropColumn: "c"},
			"ALTER TABLE t DROP COLUMN c"},
		{&AlterTableStatement{Table: "t", Action: AlterDropConstraint, DropName: "ck", IfExists: true},
			"ALTER TABLE t DROP CONSTRAINT IF EXISTS ck"},
		{&AlterTableStatement{Table: "t", Action: AlterRename, NewName: "t2"},
			"ALTER TABLE t RENAME TO t2"},
		{&DropStatement{DropKind: KindDropTable, Name: "t", IfExists: true},
			"DROP TABLE IF EXISTS t"},
		{&DropStatement{DropKind: KindDropIndex, Name: "i"},
			"DROP INDEX i"},
	}
	for _, c := range cases {
		if got := SQL(c.stmt); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestSerializeAlterOtherPreservesTail(t *testing.T) {
	at := &AlterTableStatement{
		Base:   Base{Text: "ALTER TABLE t OWNER TO bob"},
		Table:  "t",
		Action: AlterOther,
	}
	if got := SQL(at); !strings.Contains(got, "OWNER TO bob") {
		t.Errorf("tail lost: %q", got)
	}
}

func TestSerializeExprForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Placeholder{Text: "$1"}, "$1"},
		{&UnaryExpr{Op: "-", X: &Literal{LitKind: "number", Value: "3"}}, "-3"},
		{&UnaryExpr{Op: "NOT", X: &ColumnRef{Column: "f"}}, "NOT f"},
		{&FuncCall{Name: "NOW"}, "NOW()"},
		{&SubQuery{Select: &SelectStatement{Items: []SelectItem{{Expr: &Literal{LitKind: "number", Value: "1"}}}}}, "(SELECT 1)"},
		{&CaseExpr{
			Whens: []Expr{&ColumnRef{Column: "a"}},
			Thens: []Expr{&Literal{LitKind: "number", Value: "1"}},
			Else:  &Literal{LitKind: "number", Value: "0"},
		}, "CASE WHEN a THEN 1 ELSE 0 END"},
		{&BinaryExpr{Op: "LIKE", Not: true,
			Left:  &ColumnRef{Column: "n"},
			Right: &Literal{LitKind: "string", Value: "x%"}}, "n NOT LIKE 'x%'"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := ExprSQL(c.e); got != c.want {
			t.Errorf("ExprSQL(%#v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestWalkExprsCoversAllStatementShapes(t *testing.T) {
	countRefs := func(s Statement) int {
		n := 0
		WalkExprs(s, func(e Expr) bool {
			if _, ok := e.(*ColumnRef); ok {
				n++
			}
			return true
		})
		return n
	}
	sel := &SelectStatement{
		Items:   []SelectItem{{Expr: &ColumnRef{Column: "a"}}},
		From:    []TableRef{{Sub: &SelectStatement{Items: []SelectItem{{Expr: &ColumnRef{Column: "b"}}}}}},
		Joins:   []Join{{On: &ColumnRef{Column: "c"}, Table: TableRef{Sub: &SelectStatement{Where: &ColumnRef{Column: "d"}}}}},
		Where:   &ColumnRef{Column: "e"},
		GroupBy: []Expr{&ColumnRef{Column: "f"}},
		Having:  &ColumnRef{Column: "g"},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "h"}}},
		Limit:   &ColumnRef{Column: "i"},
		Setop:   []*SelectStatement{{Where: &ColumnRef{Column: "j"}}},
		With:    []CTE{{Select: &SelectStatement{Where: &ColumnRef{Column: "k"}}}},
	}
	if got := countRefs(sel); got != 11 {
		t.Errorf("select refs = %d, want 11", got)
	}
	ins := &InsertStatement{Rows: [][]Expr{{&ColumnRef{Column: "a"}}},
		Select: &SelectStatement{Where: &ColumnRef{Column: "b"}}}
	if got := countRefs(ins); got != 2 {
		t.Errorf("insert refs = %d", got)
	}
	up := &UpdateStatement{
		Set:   []Assignment{{Value: &ColumnRef{Column: "a"}}},
		Where: &ColumnRef{Column: "b"}}
	if got := countRefs(up); got != 2 {
		t.Errorf("update refs = %d", got)
	}
	ct := &CreateTableStatement{
		Columns:     []ColumnDef{{Check: &ColumnRef{Column: "a"}, Default: &ColumnRef{Column: "b"}}},
		Constraints: []TableConstraint{{Check: &ColumnRef{Column: "c"}}},
		AsSelect:    &SelectStatement{Where: &ColumnRef{Column: "d"}}}
	if got := countRefs(ct); got != 4 {
		t.Errorf("create refs = %d", got)
	}
	at := &AlterTableStatement{
		Column:     &ColumnDef{Check: &ColumnRef{Column: "a"}},
		Constraint: &TableConstraint{Check: &ColumnRef{Column: "b"}}}
	if got := countRefs(at); got != 2 {
		t.Errorf("alter refs = %d", got)
	}
}

func TestWalkExprEarlyStop(t *testing.T) {
	e := &BinaryExpr{Op: "AND",
		Left:  &BinaryExpr{Op: "=", Left: &ColumnRef{Column: "a"}, Right: &ColumnRef{Column: "b"}},
		Right: &ColumnRef{Column: "c"}}
	visits := 0
	WalkExpr(e, func(Expr) bool {
		visits++
		return false // stop immediately: children skipped
	})
	if visits != 1 {
		t.Errorf("visits = %d, want 1", visits)
	}
}

func TestWalkExprSubquery(t *testing.T) {
	e := &SubQuery{Select: &SelectStatement{Where: &ColumnRef{Column: "x"}}}
	found := false
	WalkExpr(e, func(x Expr) bool {
		if cr, ok := x.(*ColumnRef); ok && cr.Column == "x" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("subquery not walked")
	}
}

func TestRawExprSerialization(t *testing.T) {
	// Raw nodes round-trip token text with spaces.
	r := &Raw{}
	if ExprSQL(r) != "" {
		t.Error("empty raw")
	}
}
