// Package sqlast defines the annotated parse tree produced by the
// non-validating parser (internal/parser) and consumed by ap-detect
// and ap-fix. The tree intentionally tolerates partial information: any
// construct the parser could not understand is preserved as a Raw node
// holding its original tokens, so detection rules degrade gracefully
// instead of failing on exotic dialect syntax (paper §4.1).
package sqlast

import "sqlcheck/internal/sqltoken"

// StatementKind classifies a parsed statement.
type StatementKind int

// Statement kinds recognized by the parser. KindOther covers any
// statement the parser does not model structurally (GRANT, PRAGMA, …);
// its raw tokens remain available.
const (
	KindOther StatementKind = iota
	KindSelect
	KindInsert
	KindUpdate
	KindDelete
	KindCreateTable
	KindCreateIndex
	KindAlterTable
	KindDropTable
	KindDropIndex
	KindCreateView
)

var kindNames = map[StatementKind]string{
	KindOther:       "OTHER",
	KindSelect:      "SELECT",
	KindInsert:      "INSERT",
	KindUpdate:      "UPDATE",
	KindDelete:      "DELETE",
	KindCreateTable: "CREATE TABLE",
	KindCreateIndex: "CREATE INDEX",
	KindAlterTable:  "ALTER TABLE",
	KindDropTable:   "DROP TABLE",
	KindDropIndex:   "DROP INDEX",
	KindCreateView:  "CREATE VIEW",
}

// String returns the SQL verb for the statement kind.
func (k StatementKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "OTHER"
}

// Valid reports whether k is a kind the parser can produce. Rule
// metadata validation uses it to reject declarations naming kinds no
// statement will ever carry, which would make a dispatch gate reject
// everything.
func (k StatementKind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Statement is any parsed SQL statement.
type Statement interface {
	Kind() StatementKind
	// Raw returns the original statement text.
	Raw() string
}

// Base carries the source text and tokens shared by all statements.
type Base struct {
	Text   string
	Tokens []sqltoken.Token // significant tokens (no whitespace/comments)
}

// Raw returns the original statement text.
func (b *Base) Raw() string { return b.Text }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a parsed scalar expression.
type Expr interface{ isExpr() }

// ColumnRef names a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table  string // may be ""
	Column string // "*" for wildcards
}

// Literal is a string, numeric, boolean, or NULL literal.
type Literal struct {
	// LitKind is one of "string", "number", "bool", "null".
	LitKind string
	// Value is the literal text; for strings the quotes are stripped.
	Value string
}

// Placeholder is a bind parameter (?, $1, :name, %s).
type Placeholder struct{ Text string }

// BinaryExpr is a binary operation. Op is upper-cased for word
// operators (AND, OR, LIKE, IN, REGEXP, …) and literal for symbols.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
	// Not is set for NOT LIKE / NOT IN / IS NOT.
	Not bool
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is a function invocation.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// ExprList is a parenthesized list, e.g. the right side of IN.
type ExprList struct{ Items []Expr }

// SubQuery wraps a nested SELECT used as an expression.
type SubQuery struct{ Select *SelectStatement }

// CaseExpr is a CASE WHEN expression; only the pieces detection needs.
type CaseExpr struct {
	Whens []Expr
	Thens []Expr
	Else  Expr
}

// Raw preserves token runs the expression parser could not structure.
type Raw struct{ Tokens []sqltoken.Token }

func (*ColumnRef) isExpr()   {}
func (*Literal) isExpr()     {}
func (*Placeholder) isExpr() {}
func (*BinaryExpr) isExpr()  {}
func (*UnaryExpr) isExpr()   {}
func (*FuncCall) isExpr()    {}
func (*ExprList) isExpr()    {}
func (*SubQuery) isExpr()    {}
func (*CaseExpr) isExpr()    {}
func (*Raw) isExpr()         {}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// SelectItem is one entry of a select list.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Star marks a bare * or table.* wildcard item.
	Star bool
	// StarTable is the table qualifier of a table.* item.
	StarTable string
}

// TableRef is a table in a FROM clause.
type TableRef struct {
	Name  string
	Alias string
	// Sub is set when the "table" is a parenthesized subquery.
	Sub *SelectStatement
}

// JoinKind is INNER, LEFT, RIGHT, FULL, or CROSS.
type JoinKind string

// Join is one JOIN clause attached to the FROM list.
type Join struct {
	Kind  JoinKind
	Table TableRef
	On    Expr // nil for CROSS or comma joins
	Using []string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStatement models a SELECT query.
type SelectStatement struct {
	Base
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	// Setop chains UNION/INTERSECT/EXCEPT selects.
	Setop []*SelectStatement
	// With holds CTE definitions (name -> select), in order.
	With []CTE
}

// CTE is one common-table-expression in a WITH clause.
type CTE struct {
	Name      string
	Recursive bool
	Select    *SelectStatement
}

// Kind implements Statement.
func (*SelectStatement) Kind() StatementKind { return KindSelect }

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// InsertStatement models INSERT INTO.
type InsertStatement struct {
	Base
	Table   string
	Columns []string // empty when the column list is omitted
	// Rows holds VALUES tuples; nil when inserting from a SELECT.
	Rows   [][]Expr
	Select *SelectStatement
	// OrReplace marks INSERT OR REPLACE / REPLACE INTO.
	OrReplace bool
}

// Kind implements Statement.
func (*InsertStatement) Kind() StatementKind { return KindInsert }

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column ColumnRef
	Value  Expr
}

// UpdateStatement models UPDATE ... SET ... WHERE.
type UpdateStatement struct {
	Base
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

// Kind implements Statement.
func (*UpdateStatement) Kind() StatementKind { return KindUpdate }

// DeleteStatement models DELETE FROM ... WHERE.
type DeleteStatement struct {
	Base
	Table string
	Where Expr
}

// Kind implements Statement.
func (*DeleteStatement) Kind() StatementKind { return KindDelete }

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name string
	// Type is the raw type name upper-cased, without parameters
	// (VARCHAR, INT, FLOAT, ENUM, …).
	Type string
	// TypeParams holds parenthesized type arguments: lengths for
	// VARCHAR(10), the value list for ENUM('a','b').
	TypeParams []string
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	// AutoIncrement marks AUTO_INCREMENT/AUTOINCREMENT/SERIAL columns.
	AutoIncrement bool
	Default       Expr
	// References is a column-level REFERENCES clause.
	References *ForeignKeyRef
	// Check is a column-level CHECK constraint expression.
	Check Expr
}

// ForeignKeyRef is the target of a REFERENCES clause.
type ForeignKeyRef struct {
	Table    string
	Columns  []string
	OnDelete string // "", "CASCADE", "SET NULL", "RESTRICT", ...
	OnUpdate string
}

// TableConstraint is a table-level constraint in CREATE TABLE or ALTER
// TABLE ADD CONSTRAINT.
type TableConstraint struct {
	Name string // constraint name; may be ""
	// CKind is "PRIMARY KEY", "FOREIGN KEY", "UNIQUE", or "CHECK".
	CKind   string
	Columns []string
	Ref     *ForeignKeyRef // FOREIGN KEY only
	Check   Expr           // CHECK only
}

// CreateTableStatement models CREATE TABLE.
type CreateTableStatement struct {
	Base
	Name        string
	IfNotExists bool
	Temporary   bool
	Columns     []ColumnDef
	Constraints []TableConstraint
	// AsSelect is set for CREATE TABLE ... AS SELECT.
	AsSelect *SelectStatement
}

// Kind implements Statement.
func (*CreateTableStatement) Kind() StatementKind { return KindCreateTable }

// CreateIndexStatement models CREATE [UNIQUE] INDEX.
type CreateIndexStatement struct {
	Base
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Kind implements Statement.
func (*CreateIndexStatement) Kind() StatementKind { return KindCreateIndex }

// AlterAction is the verb of an ALTER TABLE statement.
type AlterAction int

// Alter table actions the parser recognizes.
const (
	AlterOther AlterAction = iota
	AlterAddColumn
	AlterDropColumn
	AlterAddConstraint
	AlterDropConstraint
	AlterRename
	AlterAlterColumn
)

// AlterTableStatement models ALTER TABLE.
type AlterTableStatement struct {
	Base
	Table      string
	Action     AlterAction
	Column     *ColumnDef       // AlterAddColumn / AlterAlterColumn
	DropColumn string           // AlterDropColumn
	Constraint *TableConstraint // AlterAddConstraint
	DropName   string           // AlterDropConstraint
	NewName    string           // AlterRename
	// IfExists applies to DROP CONSTRAINT IF EXISTS.
	IfExists bool
}

// Kind implements Statement.
func (*AlterTableStatement) Kind() StatementKind { return KindAlterTable }

// DropStatement models DROP TABLE / DROP INDEX.
type DropStatement struct {
	Base
	DropKind StatementKind // KindDropTable or KindDropIndex
	Name     string
	IfExists bool
}

// Kind implements Statement.
func (d *DropStatement) Kind() StatementKind { return d.DropKind }

// OtherStatement preserves statements the parser does not model.
type OtherStatement struct {
	Base
	// Verb is the first keyword of the statement, upper-cased.
	Verb string
}

// Kind implements Statement.
func (*OtherStatement) Kind() StatementKind { return KindOther }

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

// WalkExpr calls fn for every node of the expression tree rooted at e,
// in pre-order. If fn returns false the node's children are skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *ExprList:
		for _, it := range x.Items {
			WalkExpr(it, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w, fn)
		}
		for _, t := range x.Thens {
			WalkExpr(t, fn)
		}
		WalkExpr(x.Else, fn)
	case *SubQuery:
		if x.Select != nil {
			WalkExprs(x.Select, fn)
		}
	}
}

// WalkExprs walks every expression appearing anywhere in the statement.
func WalkExprs(stmt Statement, fn func(Expr) bool) {
	switch s := stmt.(type) {
	case *SelectStatement:
		for _, it := range s.Items {
			WalkExpr(it.Expr, fn)
		}
		for _, j := range s.Joins {
			WalkExpr(j.On, fn)
			if j.Table.Sub != nil {
				WalkExprs(j.Table.Sub, fn)
			}
		}
		for _, t := range s.From {
			if t.Sub != nil {
				WalkExprs(t.Sub, fn)
			}
		}
		WalkExpr(s.Where, fn)
		for _, g := range s.GroupBy {
			WalkExpr(g, fn)
		}
		WalkExpr(s.Having, fn)
		for _, o := range s.OrderBy {
			WalkExpr(o.Expr, fn)
		}
		WalkExpr(s.Limit, fn)
		WalkExpr(s.Offset, fn)
		for _, u := range s.Setop {
			WalkExprs(u, fn)
		}
		for _, c := range s.With {
			if c.Select != nil {
				WalkExprs(c.Select, fn)
			}
		}
	case *InsertStatement:
		for _, row := range s.Rows {
			for _, e := range row {
				WalkExpr(e, fn)
			}
		}
		if s.Select != nil {
			WalkExprs(s.Select, fn)
		}
	case *UpdateStatement:
		for _, a := range s.Set {
			WalkExpr(a.Value, fn)
		}
		WalkExpr(s.Where, fn)
	case *DeleteStatement:
		WalkExpr(s.Where, fn)
	case *CreateTableStatement:
		for _, c := range s.Columns {
			WalkExpr(c.Check, fn)
			WalkExpr(c.Default, fn)
		}
		for _, tc := range s.Constraints {
			WalkExpr(tc.Check, fn)
		}
		if s.AsSelect != nil {
			WalkExprs(s.AsSelect, fn)
		}
	case *AlterTableStatement:
		if s.Column != nil {
			WalkExpr(s.Column.Check, fn)
			WalkExpr(s.Column.Default, fn)
		}
		if s.Constraint != nil {
			WalkExpr(s.Constraint.Check, fn)
		}
	}
}

// ColumnRefs returns every column reference in the expression tree.
func ColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}
