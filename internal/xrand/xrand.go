// Package xrand provides a small deterministic random source shared by
// the corpus generators, the data profiler's sampler, and the
// benchmark harness. Everything downstream of a seed is reproducible,
// which the experiment tables rely on.
package xrand

// Rand is a splitmix64-based generator. The zero value is NOT valid;
// use New.
type Rand struct{ state uint64 }

// New returns a generator seeded with seed (0 is remapped).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns an int uniform in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a float uniform in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly random element of the non-empty slice.
func Pick[T any](r *Rand, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes the slice in place.
func Shuffle[T any](r *Rand, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s
// (s=0 is uniform; s≈1 is classic web-workload skew). Implemented by
// inverse CDF over precomputed weights; for the corpus sizes used here
// the O(n) construction is fine.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	z := &Zipf{r: r, cdf: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		w := 1.0
		for k := 0.0; k < s; k++ {
			w /= float64(i + 1)
		}
		// Fractional skew: blend.
		if frac := s - float64(int(s)); frac > 0 {
			w /= pow(float64(i+1), frac)
		}
		total += w
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

func pow(base, exp float64) float64 {
	// Small positive exponents only; a few Newton steps of exp/log are
	// unnecessary — use repeated square root approximation via math is
	// overkill, but stdlib math is allowed.
	return mathPow(base, exp)
}

// Next draws the next index.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
