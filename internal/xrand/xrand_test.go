package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds collide immediately")
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(7)
			if v < 0 || v >= 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPickShuffle(t *testing.T) {
	r := New(5)
	items := []int{1, 2, 3, 4, 5}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 5 {
		t.Errorf("Pick coverage = %v", seen)
	}
	cp := append([]int{}, items...)
	Shuffle(r, cp)
	sum := 0
	for _, v := range cp {
		sum += v
	}
	if sum != 15 {
		t.Error("Shuffle lost elements")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
	// Uniform when s = 0.
	u := NewZipf(New(12), 10, 0)
	uc := make([]int, 10)
	for i := 0; i < 10000; i++ {
		uc[u.Next()]++
	}
	if uc[0] > 3*uc[9] {
		t.Errorf("s=0 not near uniform: %v", uc)
	}
}
