package xrand

import "math"

func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }
