package corpus

import (
	"fmt"
	"strings"

	"sqlcheck/internal/rules"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// DjangoApp is one synthetic web-application workload: ORM-shaped SQL
// plus a small live database, with seeded ground truth.
type DjangoApp struct {
	Name   string
	Domain string
	// Statements is the captured query workload (DDL from migrations
	// plus queries from "integration tests").
	Statements []string
	// DB is the deployed database (for data rules).
	DB *storage.Database
	// Seeded maps rule ID -> seeded instance count.
	Seeded map[string]int
	// Reported lists the high-impact AP types the paper reported
	// upstream for this app (Table 7).
	Reported []string
}

// TotalSeeded sums seeded instances.
func (a *DjangoApp) TotalSeeded() int {
	n := 0
	for _, c := range a.Seeded {
		n += c
	}
	return n
}

// djangoSpec encodes paper Table 7: app, domain, total APs detected,
// and the reported AP names.
type djangoSpec struct {
	name, domain string
	total        int
	reported     []string
}

var djangoSpecs = []djangoSpec{
	{"globaleaks", "whistleblower", 10, []string{rules.IDNoForeignKey, rules.IDEnumeratedTypes}},
	{"django-oscar", "e-commerce", 12, []string{rules.IDRoundingErrors, rules.IDIndexOveruse}},
	{"saleor", "e-commerce", 10, []string{rules.IDMultiValuedAttribute, rules.IDIndexOveruse}},
	{"django-crm", "crm", 8, []string{rules.IDIndexUnderuse, rules.IDIndexOveruse, rules.IDPatternMatching, rules.IDNoDomainConstraint}},
	{"django-cms", "cms", 11, []string{rules.IDIndexOveruse}},
	{"wagtail-autocomplete", "utility", 1, []string{rules.IDPatternMatching}},
	{"shuup", "e-commerce", 6, []string{rules.IDIndexOveruse}},
	{"pretix", "e-commerce", 11, []string{rules.IDIndexOveruse, rules.IDPatternMatching, rules.IDNoDomainConstraint}},
	{"django-countries", "library", 1, []string{rules.IDMultiValuedAttribute}},
	{"micro-finance", "finance", 8, []string{rules.IDIndexUnderuse, rules.IDIndexOveruse, rules.IDPatternMatching, rules.IDNoDomainConstraint}},
	{"bootcamp", "social-network", 5, []string{rules.IDIndexOveruse}},
	{"netbox", "dcim", 9, []string{rules.IDIndexOveruse, rules.IDPatternMatching, rules.IDNoDomainConstraint}},
	{"ralph", "asset-mgmt", 12, []string{rules.IDIndexOveruse, rules.IDPatternMatching, rules.IDNoDomainConstraint}},
	{"taiga", "e-commerce", 9, []string{rules.IDIndexOveruse, rules.IDNoDomainConstraint}},
	{"wagtail", "cms", 10, []string{rules.IDIndexOveruse, rules.IDNoDomainConstraint}},
}

// DjangoSuiteOptions configures the suite.
type DjangoSuiteOptions struct {
	Seed uint64
	Rows int // rows per seeded table (default 100)
}

// DjangoSuite builds the 15 application workloads of Table 7.
func DjangoSuite(opts DjangoSuiteOptions) []*DjangoApp {
	if opts.Seed == 0 {
		opts.Seed = 15
	}
	if opts.Rows == 0 {
		opts.Rows = 100
	}
	r := xrand.New(opts.Seed)
	var out []*DjangoApp
	for _, spec := range djangoSpecs {
		out = append(out, buildDjangoApp(spec, r, opts.Rows))
	}
	return out
}

// fillerTypes pad each app's AP count beyond its reported types with
// lower-impact APs commonly produced by Django's ORM defaults.
var fillerTypes = []string{
	rules.IDGenericPrimaryKey,
	rules.IDColumnWildcard,
	rules.IDImplicitColumns,
	rules.IDGodTable,
	rules.IDRoundingErrors,
}

func buildDjangoApp(spec djangoSpec, r *xrand.Rand, rows int) *DjangoApp {
	app := &DjangoApp{
		Name:   spec.name,
		Domain: spec.domain,
		DB:     storage.NewDatabase(spec.name),
		Seeded: map[string]int{},
	}
	app.Reported = append(app.Reported, spec.reported...)
	b := &djangoBuilder{app: app, r: r, rows: rows}
	// Baseline migration + queries every Django app has (clean).
	b.baseline()
	// One seed per reported type first, then fillers up to the total.
	plan := append([]string{}, spec.reported...)
	fi := 0
	for len(plan) < spec.total {
		plan = append(plan, fillerTypes[fi%len(fillerTypes)])
		fi++
	}
	for _, ruleID := range plan {
		b.seed(ruleID)
		app.Seeded[ruleID]++
	}
	return app
}

type djangoBuilder struct {
	app  *DjangoApp
	r    *xrand.Rand
	rows int
	seq  int
}

func (b *djangoBuilder) add(sql string) { b.app.Statements = append(b.app.Statements, sql) }

func (b *djangoBuilder) fresh(base string) string {
	b.seq++
	return fmt.Sprintf("%s_%s_%c%c", strings.ReplaceAll(b.app.Name, "-", "_"), base,
		'a'+byte(b.seq%26), 'a'+byte((b.seq/26)%26))
}

// baseline emits the clean core of the app.
func (b *djangoBuilder) baseline() {
	t := b.fresh("auth_user")
	b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, username VARCHAR(150) NOT NULL UNIQUE, email VARCHAR(254), date_joined TIMESTAMP WITH TIME ZONE)", t, t))
	b.add(fmt.Sprintf("SELECT username, email FROM %s WHERE %s_id = %d", t, t, b.r.Intn(100)))
	b.add(fmt.Sprintf("INSERT INTO %s (%s_id, username, email, date_joined) VALUES (%d, 'u%d', 'u%d@x.io', '2020-01-01 00:00:00+00')",
		t, t, b.r.Intn(10000), b.r.Intn(999), b.r.Intn(999)))
}

// seed emits one AP instance of the given type into the workload or
// database.
func (b *djangoBuilder) seed(ruleID string) {
	switch ruleID {
	case rules.IDNoForeignKey:
		ref := b.fresh("tenant")
		own := b.fresh("questionnaire")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, zone VARCHAR(30))", ref, ref))
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, %s_id INT, name VARCHAR(30))", own, own, ref))
		b.add(fmt.Sprintf("SELECT q.name FROM %s q JOIN %s t ON t.%s_id = q.%s_id", own, ref, ref, ref))
	case rules.IDEnumeratedTypes:
		t := b.fresh("submission")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, state VARCHAR(10) CHECK (state IN ('new','open','closed')))", t, t))
	case rules.IDRoundingErrors:
		t := b.fresh("order")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, total_price FLOAT)", t, t))
	case rules.IDIndexOveruse:
		t := b.fresh("catalog")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, sku VARCHAR(30), cat VARCHAR(30), flag BOOLEAN)", t, t))
		b.add(fmt.Sprintf("CREATE INDEX %s_sku_cat ON %s (sku, cat)", t, t))
		b.add(fmt.Sprintf("CREATE INDEX %s_sku ON %s (sku)", t, t))
		b.add(fmt.Sprintf("SELECT %s_id FROM %s WHERE sku = 'S-%d' AND cat = 'c%d'", t, t, b.r.Intn(999), b.r.Intn(20)))
	case rules.IDIndexUnderuse:
		t := b.fresh("activity")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, actor VARCHAR(30), verb VARCHAR(20))", t, t))
		b.add(fmt.Sprintf("SELECT %s_id FROM %s WHERE actor = 'a%d'", t, t, b.r.Intn(500)))
		b.add(fmt.Sprintf("SELECT verb FROM %s WHERE actor = 'a%d'", t, b.r.Intn(500)))
	case rules.IDPatternMatching:
		t := b.fresh("page")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, slug VARCHAR(80), body TEXT)", t, t))
		b.add(fmt.Sprintf("SELECT %s_id FROM %s WHERE body LIKE '%%term%d%%'", t, t, b.r.Intn(50)))
	case rules.IDMultiValuedAttribute:
		t := b.fresh("profile")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, country_codes TEXT)", t, t))
		b.add(fmt.Sprintf("SELECT %s_id FROM %s WHERE country_codes LIKE '%%DE%%'", t, t))
	case rules.IDNoDomainConstraint:
		// Data-detected: seed a rating column in the live database.
		name := b.fresh("review")
		tab := b.app.DB.CreateTable(name, []storage.ColumnDef{
			{Name: name + "_id", Class: schema.ClassInteger},
			{Name: "rating", Class: schema.ClassInteger},
			{Name: "body", Class: schema.ClassChar},
		})
		if err := tab.SetPrimaryKey(name + "_id"); err != nil {
			panic(err)
		}
		for i := 0; i < b.rows; i++ {
			tab.MustInsert(storage.Int(int64(i)), storage.Int(int64(i%5+1)), storage.Str(fmt.Sprintf("r%d-%d", i, b.r.Intn(99))))
		}
	case rules.IDGenericPrimaryKey:
		t := b.fresh("model")
		b.add(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, data VARCHAR(50))", t))
	case rules.IDColumnWildcard:
		t := b.fresh("model")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, a VARCHAR(10), b VARCHAR(10))", t, t))
		b.add(fmt.Sprintf("SELECT * FROM %s WHERE %s_id = %d", t, t, b.r.Intn(100)))
	case rules.IDImplicitColumns:
		t := b.fresh("log")
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, msg VARCHAR(100))", t, t))
		b.add(fmt.Sprintf("INSERT INTO %s VALUES (%d, 'started')", t, b.r.Intn(10000)))
	case rules.IDGodTable:
		t := b.fresh("settings")
		cols := make([]string, 13)
		for i := range cols {
			cols[i] = fmt.Sprintf("opt_%c VARCHAR(20)", 'a'+byte(i))
		}
		b.add(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, %s)", t, t, strings.Join(cols, ", ")))
	}
}
