package corpus

import (
	"strings"
	"testing"

	"sqlcheck/internal/core"
	"sqlcheck/internal/exec"
	"sqlcheck/internal/parser"
	"sqlcheck/internal/rules"
)

func TestGitHubDeterministic(t *testing.T) {
	a := GitHub(GitHubOptions{Repos: 5, Seed: 9})
	b := GitHub(GitHubOptions{Repos: 5, Seed: 9})
	if a.TotalStatements() != b.TotalStatements() {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Repos {
		for j := range a.Repos[i].Statements {
			if a.Repos[i].Statements[j] != b.Repos[i].Statements[j] {
				t.Fatal("same seed, different statements")
			}
		}
	}
	c := GitHub(GitHubOptions{Repos: 5, Seed: 10})
	if c.Repos[0].Statements[0] == a.Repos[0].Statements[0] && c.Repos[0].Statements[1] == a.Repos[0].Statements[1] {
		t.Error("different seeds produced identical output")
	}
}

func TestGitHubSizesAndLabels(t *testing.T) {
	c := GitHub(GitHubOptions{Repos: 20, Seed: 3})
	if len(c.Repos) != 20 {
		t.Fatalf("repos = %d", len(c.Repos))
	}
	total := c.TotalStatements()
	if total < 20*15 || total > 20*45 {
		t.Errorf("total statements = %d out of bounds", total)
	}
	truth := c.TruthByRule()
	// The generator must exercise a broad range of AP types.
	if len(truth) < 12 {
		t.Errorf("truth rule types = %d (%v), want >= 12", len(truth), truth)
	}
	for _, required := range []string{
		rules.IDMultiValuedAttribute, rules.IDPatternMatching,
		rules.IDNoPrimaryKey, rules.IDEnumeratedTypes, rules.IDGodTable,
	} {
		if truth[required] == 0 {
			t.Errorf("no truth instances for %s", required)
		}
	}
	if got := c.RuleIDsInTruth(); len(got) != len(truth) {
		t.Errorf("RuleIDsInTruth = %v", got)
	}
}

func TestGitHubStatementsParse(t *testing.T) {
	c := GitHub(GitHubOptions{Repos: 10, Seed: 7})
	for _, r := range c.Repos {
		for _, s := range r.Statements {
			if st := parser.Parse(s); st == nil {
				t.Fatalf("statement failed to parse: %q", s)
			}
		}
	}
}

// Ground truth sanity: sqlcheck must find labeled god-table statements
// and must not flag the adversarial comma-heavy negatives.
func TestGitHubAdversarialsBehave(t *testing.T) {
	c := GitHub(GitHubOptions{Repos: 30, Seed: 5})
	for _, repo := range c.Repos {
		sql := strings.Join(repo.Statements, ";\n")
		res := core.DetectSQL(sql, nil, core.DefaultOptions())
		for _, f := range res.Findings {
			if f.RuleID != rules.IDGodTable || f.QueryIndex < 0 {
				continue
			}
			if !repo.HasTruth(f.QueryIndex, rules.IDGodTable) {
				t.Errorf("god-table FP on %q", repo.Statements[f.QueryIndex])
			}
		}
	}
}

func TestRepoHelpers(t *testing.T) {
	r := &Repo{Name: "x"}
	i := r.AddStatement("SELECT 1")
	j := r.AddStatement("SELECT * FROM t", rules.IDColumnWildcard)
	if i != 0 || j != 1 {
		t.Fatal("indexes")
	}
	if r.HasTruth(0, rules.IDColumnWildcard) || !r.HasTruth(1, rules.IDColumnWildcard) {
		t.Error("HasTruth")
	}
	if r.TruthCount(rules.IDColumnWildcard) != 1 {
		t.Error("TruthCount")
	}
}

func TestKaggleSuiteMatchesTable6(t *testing.T) {
	suite := KaggleSuite(KaggleSuiteOptions{})
	if len(suite) != 31 {
		t.Fatalf("databases = %d, want 31", len(suite))
	}
	total := 0
	byName := map[string]*KaggleDB{}
	for _, k := range suite {
		total += k.TotalSeeded()
		byName[k.Name] = k
	}
	if total != 200 {
		t.Errorf("total seeded = %d, want 200 (paper Table 6)", total)
	}
	if byName["history-of-baseball"].TotalSeeded() != 41 {
		t.Errorf("history-of-baseball = %d, want 41", byName["history-of-baseball"].TotalSeeded())
	}
	if byName["twitter-black-panther"].TotalSeeded() != 0 {
		t.Error("clean database has seeds")
	}
	// Every database with seeds has tables with data.
	for _, k := range suite {
		if k.TotalSeeded() > 0 && len(k.DB.Tables()) == 0 {
			t.Errorf("%s has no tables", k.Name)
		}
	}
}

func TestKaggleSeedsAreDetectable(t *testing.T) {
	// Data analysis alone (no queries) must find the seeded AP types
	// in a sample database — the §8.4 data-analysis experiment.
	suite := KaggleSuite(KaggleSuiteOptions{})
	var baseball *KaggleDB
	for _, k := range suite {
		if k.Name == "history-of-baseball" {
			baseball = k
		}
	}
	res := core.DetectSQL("", baseball.DB, core.DefaultOptions())
	found := core.CountByRule(res.Findings)
	for ruleID := range baseball.Seeded {
		if found[ruleID] == 0 {
			t.Errorf("seeded %s not detected; found %v", ruleID, found)
		}
	}
}

func TestDjangoSuiteMatchesTable7(t *testing.T) {
	suite := DjangoSuite(DjangoSuiteOptions{})
	if len(suite) != 15 {
		t.Fatalf("apps = %d, want 15", len(suite))
	}
	total := 0
	for _, a := range suite {
		total += a.TotalSeeded()
		if a.TotalSeeded() == 0 {
			t.Errorf("%s has no seeds", a.Name)
		}
		// Every reported type is seeded.
		for _, rep := range a.Reported {
			if a.Seeded[rep] == 0 {
				t.Errorf("%s reported %s but did not seed it", a.Name, rep)
			}
		}
	}
	if total != 123 {
		t.Errorf("total seeded = %d, want 123 (paper Table 7)", total)
	}
}

func TestDjangoWorkloadsDetectable(t *testing.T) {
	suite := DjangoSuite(DjangoSuiteOptions{})
	app := suite[0] // globaleaks: no-foreign-key + enumerated-types
	res := core.DetectSQL(strings.Join(app.Statements, ";\n"), app.DB, core.DefaultOptions())
	found := core.CountByRule(res.Findings)
	for _, rep := range app.Reported {
		if found[rep] == 0 {
			t.Errorf("reported AP %s not detected in %s; found %v", rep, app.Name, found)
		}
	}
}

func TestUserStudyShape(t *testing.T) {
	parts := UserStudy(UserStudyOptions{})
	if len(parts) != 23 {
		t.Fatalf("participants = %d", len(parts))
	}
	totals := Totals(parts)
	if totals.MeanPerUser < 32 || totals.MeanPerUser > 64 {
		t.Errorf("mean statements per user = %v, want ~43", totals.MeanPerUser)
	}
	if totals.TruthInstances == 0 {
		t.Error("no APs injected")
	}
	if totals.EngagedUsers != 20 {
		t.Errorf("engaged = %d, want 20", totals.EngagedUsers)
	}
	// Skill anti-correlates with injected APs: compare the top and
	// bottom skill halves.
	lowAPs, highAPs, low, high := 0, 0, 0, 0
	for _, p := range parts {
		n := 0
		for _, ids := range p.Truth {
			n += len(ids)
		}
		if p.Skill < 0.55 {
			lowAPs += n
			low++
		} else {
			highAPs += n
			high++
		}
	}
	if low > 0 && high > 0 && float64(lowAPs)/float64(low) <= float64(highAPs)/float64(high) {
		t.Errorf("skill does not reduce AP rate: low %d/%d high %d/%d", lowAPs, low, highAPs, high)
	}
}

func TestGlobaLeaksVariants(t *testing.T) {
	opts := GlobaLeaksOptions{Tenants: 50, Users: 150, UsersPerTenant: 3, Seed: 2}
	mva := GlobaLeaksMVA(opts)
	fixed := GlobaLeaksFixed(opts)
	if mva.Table("Tenants").Len() != 50 || fixed.Table("Tenants").Len() != 50 {
		t.Fatal("tenant counts")
	}
	if fixed.Table("Hosting").Len() != 150 {
		t.Fatalf("hosting rows = %d", fixed.Table("Hosting").Len())
	}
	// Task #1 returns the same logical answer on both designs.
	r1, err := exec.RunSQL(mva, `SELECT Tenant_ID FROM Tenants WHERE User_IDs LIKE '[[:<:]]U10[[:>:]]'`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exec.RunSQL(fixed, `SELECT Tenant_ID FROM Hosting WHERE User_ID = 'U10'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) == 0 || len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("task1 rows: mva=%d fixed=%d", len(r1.Rows), len(r2.Rows))
	}
	// The MVA design is detected by sqlcheck's data rules.
	res := core.DetectSQL("", mva, core.DefaultOptions())
	if core.CountByRule(res.Findings)[rules.IDMultiValuedAttribute] == 0 {
		t.Error("MVA not detected in the AP design")
	}
}
