// Package corpus generates the synthetic, ground-truth-labeled
// evaluation workloads that stand in for the paper's proprietary data
// sets (DESIGN.md §3): the GitHub query corpus (1406 repos / ~174k
// statements in the paper), the 31 Kaggle databases, the 15 Django
// application workloads, and the 23-participant user study. All
// generators are deterministic in their seed.
package corpus

import (
	"sort"
)

// Repo is one repository-like unit: a schema plus statements analyzed
// together (inter-query context is per repo).
type Repo struct {
	Name       string
	Statements []string
	// Truth maps statement index -> rule IDs genuinely present. An
	// absent entry means the statement is anti-pattern-free.
	Truth map[int][]string
}

// AddStatement appends a statement with its ground-truth labels and
// returns its index.
func (r *Repo) AddStatement(sql string, truthRuleIDs ...string) int {
	idx := len(r.Statements)
	r.Statements = append(r.Statements, sql)
	if len(truthRuleIDs) > 0 {
		if r.Truth == nil {
			r.Truth = map[int][]string{}
		}
		r.Truth[idx] = append(r.Truth[idx], truthRuleIDs...)
	}
	return idx
}

// HasTruth reports whether the statement truly contains the rule.
func (r *Repo) HasTruth(idx int, ruleID string) bool {
	for _, id := range r.Truth[idx] {
		if id == ruleID {
			return true
		}
	}
	return false
}

// TruthCount counts (statement, rule) truth pairs for one rule across
// the repo.
func (r *Repo) TruthCount(ruleID string) int {
	n := 0
	for _, ids := range r.Truth {
		for _, id := range ids {
			if id == ruleID {
				n++
			}
		}
	}
	return n
}

// GitHubCorpus is a collection of repos.
type GitHubCorpus struct {
	Repos []*Repo
}

// TotalStatements counts statements across repos.
func (c *GitHubCorpus) TotalStatements() int {
	n := 0
	for _, r := range c.Repos {
		n += len(r.Statements)
	}
	return n
}

// TruthByRule aggregates truth counts per rule across the corpus.
func (c *GitHubCorpus) TruthByRule() map[string]int {
	out := map[string]int{}
	for _, r := range c.Repos {
		for _, ids := range r.Truth {
			for _, id := range ids {
				out[id]++
			}
		}
	}
	return out
}

// RuleIDsInTruth returns the sorted set of rule IDs appearing in the
// corpus ground truth.
func (c *GitHubCorpus) RuleIDsInTruth() []string {
	set := map[string]bool{}
	for _, r := range c.Repos {
		for _, ids := range r.Truth {
			for _, id := range ids {
				set[id] = true
			}
		}
	}
	var out []string
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
