package corpus

import (
	"fmt"
	"strings"

	"sqlcheck/internal/rules"
	"sqlcheck/internal/xrand"
)

// GitHubOptions sizes the GitHub-style corpus.
type GitHubOptions struct {
	// Repos is the number of repositories (paper: 1406).
	Repos int
	// Seed drives all randomness.
	Seed uint64
	// MinStatements/MaxStatements bound per-repo statement counts.
	MinStatements, MaxStatements int
	// CleanFraction is the share of anti-pattern-free statements
	// (default 0.45); a slice of those are adversarial negatives that
	// trip context-free detectors.
	CleanFraction float64
}

func (o GitHubOptions) withDefaults() GitHubOptions {
	if o.Repos == 0 {
		o.Repos = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinStatements == 0 {
		o.MinStatements = 15
	}
	if o.MaxStatements == 0 {
		o.MaxStatements = 45
	}
	if o.CleanFraction == 0 {
		o.CleanFraction = 0.45
	}
	return o
}

// GitHub generates the labeled corpus.
func GitHub(opts GitHubOptions) *GitHubCorpus {
	opts = opts.withDefaults()
	r := xrand.New(opts.Seed)
	c := &GitHubCorpus{}
	for i := 0; i < opts.Repos; i++ {
		g := &repoGen{r: r, repo: &Repo{Name: fmt.Sprintf("repo%04d", i)}}
		n := opts.MinStatements + r.Intn(opts.MaxStatements-opts.MinStatements+1)
		g.generate(n, opts.CleanFraction)
		c.Repos = append(c.Repos, g.repo)
	}
	return c
}

// repoGen holds per-repo naming state.
type repoGen struct {
	r    *xrand.Rand
	repo *Repo
	seq  int
}

var (
	tableVocab  = []string{"users", "orders", "products", "events", "sessions", "invoices", "accounts", "posts", "comments", "payments", "shipments", "reviews"}
	columnVocab = []string{"name", "title", "status", "amount", "quantity", "city", "country", "email", "phone", "category", "notes", "created_at"}
)

// fresh generates a unique table name. Suffixes are letters — real
// table names rarely end in digits, and digit suffixes would hand the
// baseline detector a clone-table match on every statement.
func (g *repoGen) fresh(base string) string {
	g.seq++
	return fmt.Sprintf("%s_%c%c", base, 'a'+byte(g.seq%26), 'a'+byte((g.seq/26)%26))
}

func (g *repoGen) pick(items []string) string { return xrand.Pick(g.r, items) }

// generate emits n statements mixing clean templates, adversarial
// negatives, and anti-pattern templates.
func (g *repoGen) generate(n int, cleanFrac float64) {
	for len(g.repo.Statements) < n {
		switch {
		case g.r.Bool(cleanFrac * 0.7):
			g.cleanStatement()
		case g.r.Bool(cleanFrac * 0.3 / (1 - cleanFrac*0.7)):
			g.adversarialNegative()
		default:
			g.antiPattern()
		}
	}
}

// cleanStatement emits an AP-free statement.
func (g *repoGen) cleanStatement() {
	t := g.fresh(g.pick(tableVocab))
	c1, c2 := g.pick(columnVocab), g.pick(columnVocab)
	switch g.r.Intn(6) {
	case 0:
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, %s VARCHAR(40) NOT NULL, %s NUMERIC(12,2), created TIMESTAMP WITH TIME ZONE)",
			t, t, c1, c2))
	case 1:
		g.repo.AddStatement(fmt.Sprintf("SELECT %s, %s FROM %s WHERE %s_id = %d", c1, c2, t, t, g.r.Intn(1000)))
	case 2:
		g.repo.AddStatement(fmt.Sprintf("INSERT INTO %s (%s_id, %s) VALUES (%d, 'v%d')", t, t, c1, g.r.Intn(1000), g.r.Intn(100)))
	case 3:
		g.repo.AddStatement(fmt.Sprintf("UPDATE %s SET %s = 'x%d' WHERE %s_id = %d", t, c1, g.r.Intn(50), t, g.r.Intn(1000)))
	case 4:
		g.repo.AddStatement(fmt.Sprintf("DELETE FROM %s WHERE %s_id = %d", t, t, g.r.Intn(1000)))
	case 5:
		g.repo.AddStatement(fmt.Sprintf("SELECT COUNT(%s) FROM %s GROUP BY %s", c1, t, c2))
	}
}

// adversarialNegative emits clean statements shaped to trip
// context-free regex detection (dbdeo's false-positive classes).
func (g *repoGen) adversarialNegative() {
	t := g.fresh(g.pick(tableVocab))
	switch g.r.Intn(6) {
	case 0:
		// Prefix LIKE on an id column: index-friendly, no AP; dbdeo's
		// MVA and pattern regexes both fire.
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT %s_id FROM %s WHERE order_id LIKE 'ORD-%d%%'", t, t, 2000+g.r.Intn(25)))
	case 1:
		// Type-parameter commas: NUMERIC(10,2) inflates naive comma
		// counting toward the god-table threshold. Prose column names
		// avoid genuine data-in-metadata truth.
		named := []string{"gross NUMERIC(10,2)", "net NUMERIC(12,4)", "tax NUMERIC(8,2)", "tip NUMERIC(8,2)", "fee NUMERIC(8,2)", "discount NUMERIC(8,2)"}
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, %s, state VARCHAR(8))",
			t, t, strings.Join(named, ", ")))
	case 2:
		// Legitimate numeric-suffixed columns (hashes, address lines).
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, sha256 VARCHAR(64) NOT NULL, addr1 VARCHAR(80), addr2 VARCHAR(80))",
			t, t))
	case 3:
		// parent_id referencing a DIFFERENT table: not an adjacency
		// list.
		parent := g.fresh("categories")
		g.repo.AddStatement(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, label VARCHAR(30))", parent, parent))
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, parent_id INT REFERENCES %s(%s_id))",
			t, t, parent, parent))
	case 4:
		// A single numbered table (archive year) with no clone
		// siblings.
		name := fmt.Sprintf("%s_%d", t, 2015+g.r.Intn(10))
		g.repo.AddStatement(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, payload TEXT)", name, t))
	case 5:
		// A fixed physical series (wheel positions on a vehicle) is a
		// legitimate numbered column family: BOTH detectors flag it as
		// data-in-metadata — a shared false positive the paper's
		// manual audit would reject.
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, wheel_1 NUMERIC(6,2), wheel_2 NUMERIC(6,2), wheel_3 NUMERIC(6,2), wheel_4 NUMERIC(6,2))",
			t, t))
	}
}

// apWeights biases the template mix toward the paper's Table 3
// distribution, where implicit columns, column wildcards, and missing
// primary keys dominate sqlcheck's detections.
var apWeights = []int{
	0:  2, // MVA word-boundary
	1:  2, // MVA list column
	2:  2, // pattern matching
	3:  1, // god table
	4:  4, // no primary key
	5:  1, // enum ENUM
	6:  1, // enum CHECK
	7:  2, // rounding
	8:  1, // data in metadata
	9:  1, // adjacency
	10: 1, // clone group
	11: 5, // column wildcard
	12: 6, // implicit columns
	13: 1, // order by rand
	14: 1, // distinct join
	15: 1, // too many joins
	16: 1, // readable password
	17: 1, // no foreign key
	18: 1, // enum domain enforced in application code (FN for both)
}

var apWeightTotal = func() int {
	n := 0
	for _, w := range apWeights {
		n += w
	}
	return n
}()

// antiPattern emits a statement (or statement group) with ground-truth
// labels.
func (g *repoGen) antiPattern() {
	t := g.fresh(g.pick(tableVocab))
	pick := g.r.Intn(apWeightTotal)
	tplIdx := 0
	for i, w := range apWeights {
		if pick < w {
			tplIdx = i
			break
		}
		pick -= w
	}
	switch tplIdx {
	case 0: // multi-valued attribute: word-boundary search
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT * FROM %s WHERE user_ids LIKE '[[:<:]]U%d[[:>:]]'", t, g.r.Intn(99)),
			rules.IDMultiValuedAttribute, rules.IDPatternMatching, rules.IDColumnWildcard)
	case 1: // multi-valued attribute: list-named column + wildcard
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT %s_id FROM %s WHERE tags LIKE '%%tag%d%%'", t, t, g.r.Intn(50)),
			rules.IDMultiValuedAttribute, rules.IDPatternMatching)
	case 2: // plain expensive pattern matching (not a list column)
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT %s_id FROM %s WHERE notes LIKE '%%urgent%%'", t, t),
			rules.IDPatternMatching)
	case 3: // god table (simple columns, genuinely many)
		cols := make([]string, 14)
		for i := range cols {
			cols[i] = fmt.Sprintf("%s_%c INT", g.pick(columnVocab), 'a'+byte(i))
		}
		g.repo.AddStatement(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, %s)",
			t, t, strings.Join(cols, ", ")), rules.IDGodTable)
	case 4: // no primary key
		g.repo.AddStatement(fmt.Sprintf("CREATE TABLE %s (%s VARCHAR(40), %s TEXT)",
			t, g.pick(columnVocab), g.pick(columnVocab)), rules.IDNoPrimaryKey)
	case 5: // enumerated types via ENUM
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, status ENUM('new','active','closed'))",
			t, t), rules.IDEnumeratedTypes)
	case 6: // enumerated types via CHECK IN — dbdeo's known miss
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, role VARCHAR(8) CHECK (role IN ('R1','R2','R3')))",
			t, t), rules.IDEnumeratedTypes)
	case 7: // rounding errors
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, price FLOAT, balance DOUBLE PRECISION)",
			t, t), rules.IDRoundingErrors)
	case 8: // data in metadata: genuine column series
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, q1 INT, q2 INT, q3 INT, q4 INT, q5 INT)",
			t, t), rules.IDDataInMetadata)
	case 9: // adjacency list: true self reference
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, parent_id INT REFERENCES %s(%s_id))",
			t, t, t, t), rules.IDAdjacencyList)
	case 10: // clone tables: a real numbered family
		base := g.fresh("archive")
		for y := 0; y < 3; y++ {
			g.repo.AddStatement(fmt.Sprintf(
				"CREATE TABLE %s_%d (%s_id INT PRIMARY KEY, payload TEXT)", base, y+1, base),
				rules.IDCloneTable)
		}
	case 11: // column wildcard
		g.repo.AddStatement(fmt.Sprintf("SELECT * FROM %s WHERE %s_id = %d", t, t, g.r.Intn(500)),
			rules.IDColumnWildcard)
	case 12: // implicit columns
		g.repo.AddStatement(fmt.Sprintf("INSERT INTO %s VALUES (%d, 'x', TRUE)", t, g.r.Intn(500)),
			rules.IDImplicitColumns)
	case 13: // order by rand
		g.repo.AddStatement(fmt.Sprintf("SELECT %s FROM %s ORDER BY RAND() LIMIT 5", g.pick(columnVocab), t),
			rules.IDOrderByRand)
	case 14: // distinct + join
		u := g.fresh(g.pick(tableVocab))
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT DISTINCT a.%s FROM %s a JOIN %s b ON a.%s_id = b.%s_id",
			g.pick(columnVocab), t, u, t, t), rules.IDDistinctJoin)
	case 15: // too many joins
		names := make([]string, 5)
		for i := range names {
			names[i] = g.fresh(g.pick(tableVocab))
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "SELECT %s.%s FROM %s", names[0], g.pick(columnVocab), names[0])
		for i := 1; i < len(names); i++ {
			fmt.Fprintf(&sb, " JOIN %s ON %s.k = %s.k", names[i], names[i-1], names[i])
		}
		g.repo.AddStatement(sb.String(), rules.IDTooManyJoins)
	case 16: // readable password
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, login VARCHAR(30), password VARCHAR(30))",
			t, t), rules.IDReadablePassword)
	case 17: // no foreign key: DDL pair + join (inter-query AP)
		ref := g.fresh(g.pick(tableVocab))
		g.repo.AddStatement(fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, %s VARCHAR(30))",
			ref, ref, g.pick(columnVocab)))
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, %s_id INT, %s VARCHAR(30))",
			t, t, ref, g.pick(columnVocab)), rules.IDNoForeignKey)
		g.repo.AddStatement(fmt.Sprintf(
			"SELECT a.%s_id FROM %s a JOIN %s b ON a.%s_id = b.%s_id",
			t, t, ref, ref, ref))
	case 18:
		// Enumerated domain enforced in application constants: the DDL
		// shows a plain VARCHAR, so neither query-analysis detector
		// can see the AP — a ground-truth false negative that only
		// data analysis would recover (paper §4.2).
		g.repo.AddStatement(fmt.Sprintf(
			"CREATE TABLE %s (%s_id INT PRIMARY KEY, state VARCHAR(12) NOT NULL)",
			t, t), rules.IDEnumeratedTypes)
	}
}
