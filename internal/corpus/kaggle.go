package corpus

import (
	"fmt"

	"sqlcheck/internal/rules"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// KaggleDB is one synthetic database with its seeded anti-pattern
// ground truth.
type KaggleDB struct {
	Name string
	DB   *storage.Database
	// Seeded maps rule ID -> number of seeded instances.
	Seeded map[string]int
}

// TotalSeeded sums the seeded instances.
func (k *KaggleDB) TotalSeeded() int {
	n := 0
	for _, c := range k.Seeded {
		n += c
	}
	return n
}

// kaggleSpec encodes the paper's Table 6: database name and the AP
// type mix detected in it. Counts are distributed over the listed
// types (first listed types absorb the remainder), matching the
// per-database totals of the appendix.
type kaggleSpec struct {
	name  string
	total int
	types []string
}

// Aliases for brevity in the spec table.
const (
	kNoPK   = rules.IDNoPrimaryKey
	kGenPK  = rules.IDGenericPrimaryKey
	kDIM    = rules.IDDataInMetadata
	kIDT    = rules.IDIncorrectDataType
	kMTZ    = rules.IDMissingTimezone
	kMVA    = rules.IDMultiValuedAttribute
	kDenorm = rules.IDDenormalizedTable
	kInfo   = rules.IDInformationDuplication
	kRed    = rules.IDRedundantColumn
)

// kaggleSpecs mirrors paper Table 6 (31 databases, 200 APs total).
var kaggleSpecs = []kaggleSpec{
	{"board-games", 12, []string{kNoPK, kDIM, kIDT}},
	{"pennsylvania-safe-schools", 1, []string{kNoPK}},
	{"soccer-dataset", 20, []string{kGenPK, kDIM, kMTZ, kMVA}},
	{"sf-bay-area-bike-share", 11, []string{kNoPK, kGenPK, kIDT, kMTZ, kDenorm}},
	{"us-baby-names", 2, []string{kGenPK}},
	{"pitchfork-music", 10, []string{kNoPK, kMTZ, kInfo, kDenorm}},
	{"indian-university-research", 17, []string{kNoPK, kIDT, kRed, kMVA}},
	{"whatcd-hiphop", 3, []string{kNoPK, kMVA}},
	{"snap-meme-tracker", 1, []string{kMTZ}},
	{"nips-papers", 4, []string{kGenPK, kDenorm}},
	{"us-wildfires", 2, []string{kNoPK, kRed}},
	{"crossvalidated-questions", 3, []string{kNoPK}},
	{"history-of-baseball", 41, []string{kNoPK, kDIM, kIDT, kMVA}},
	{"twitter-us-airline-sentiment", 2, []string{kDenorm}},
	{"hillary-clinton-emails", 8, []string{kGenPK, kIDT}},
	{"septa-regional-rail", 2, []string{kIDT, kMTZ}},
	{"us-consumer-finance-complaints", 9, []string{kNoPK, kIDT, kMVA, kDenorm}},
	{"gop-debate-twitter-sentiment", 1, []string{kGenPK}},
	{"sf-salaries", 2, []string{kGenPK, kDenorm}},
	{"freight-matrix-transportation", 5, []string{kNoPK, kDIM, kRed}},
	{"wdi-data", 9, []string{kNoPK, kMVA}},
	{"amazon-movie-reviews", 2, []string{kNoPK, kMVA}},
	{"uk-arms-export-license", 3, []string{kNoPK}},
	{"amazon-fine-food-reviews", 1, []string{kGenPK}},
	{"stackoverflow-question-favourites", 1, []string{kMVA}},
	{"iron-march", 1, []string{kRed}},
	{"csharp-methods-doc-comments", 4, []string{kGenPK}},
	{"pesticide-data-program", 13, []string{kNoPK, kIDT, kRed}},
	{"monty-python-flying-circus", 4, []string{kNoPK, kMTZ, kDenorm}},
	{"twitter-black-panther", 0, nil},
	{"us-election-2016", 6, []string{kNoPK, kDIM, kDenorm}},
}

// KaggleSuiteOptions configures the suite.
type KaggleSuiteOptions struct {
	Seed uint64
	// RowsPerTable controls table sizes (default 120).
	RowsPerTable int
}

// KaggleSuite builds the 31 synthetic databases of Table 6.
func KaggleSuite(opts KaggleSuiteOptions) []*KaggleDB {
	if opts.Seed == 0 {
		opts.Seed = 31
	}
	if opts.RowsPerTable == 0 {
		opts.RowsPerTable = 120
	}
	r := xrand.New(opts.Seed)
	var out []*KaggleDB
	for _, spec := range kaggleSpecs {
		out = append(out, buildKaggleDB(spec, r, opts.RowsPerTable))
	}
	return out
}

// buildKaggleDB seeds one database with exactly spec.total findings
// distributed round-robin over spec.types.
func buildKaggleDB(spec kaggleSpec, r *xrand.Rand, rows int) *KaggleDB {
	k := &KaggleDB{Name: spec.name, DB: storage.NewDatabase(spec.name), Seeded: map[string]int{}}
	b := &kaggleBuilder{db: k.DB, r: r, rows: rows}
	if spec.total == 0 || len(spec.types) == 0 {
		// A clean database: one well-designed table.
		b.cleanTable("main")
		return k
	}
	for i := 0; i < spec.total; i++ {
		ruleID := spec.types[i%len(spec.types)]
		b.seed(ruleID)
		k.Seeded[ruleID]++
	}
	return k
}

type kaggleBuilder struct {
	db   *storage.Database
	r    *xrand.Rand
	rows int
	seq  int
	// open is a multi-purpose host table that absorbs column-level
	// seeds so the database does not explode into hundreds of tables.
	open     *storage.Table
	openCols int
}

func (b *kaggleBuilder) fresh(base string) string {
	b.seq++
	return fmt.Sprintf("%s_%c%c", base, 'a'+byte(b.seq%26), 'a'+byte((b.seq/26)%26))
}

// cleanTable creates a well-designed table with realistic data.
func (b *kaggleBuilder) cleanTable(base string) *storage.Table {
	name := b.fresh(base)
	t := b.db.CreateTable(name, []storage.ColumnDef{
		{Name: name + "_id", Class: schema.ClassInteger},
		{Name: "label", Class: schema.ClassChar},
		{Name: "recorded", Class: schema.ClassTimeTZ},
	})
	if err := t.SetPrimaryKey(name + "_id"); err != nil {
		panic(err)
	}
	for i := 0; i < b.rows; i++ {
		t.MustInsert(storage.Int(int64(i)), storage.Str(fmt.Sprintf("L%d-%d", i%37, b.r.Intn(1000))), storage.TimeTZ(int64(i)*1e6, 0))
	}
	return t
}

// seed injects exactly one instance of the given data AP.
func (b *kaggleBuilder) seed(ruleID string) {
	switch ruleID {
	case kNoPK:
		name := b.fresh("flat")
		t := b.db.CreateTable(name, []storage.ColumnDef{
			{Name: "code", Class: schema.ClassChar},
			{Name: "val", Class: schema.ClassInteger},
		})
		for i := 0; i < b.rows; i++ {
			t.MustInsert(storage.Str(fmt.Sprintf("c%d", i)), storage.Int(int64(b.r.Intn(10000))))
		}
	case kGenPK:
		name := b.fresh("generic")
		t := b.db.CreateTable(name, []storage.ColumnDef{
			{Name: "id", Class: schema.ClassInteger},
			{Name: "payload", Class: schema.ClassChar},
		})
		if err := t.SetPrimaryKey("id"); err != nil {
			panic(err)
		}
		for i := 0; i < b.rows; i++ {
			t.MustInsert(storage.Int(int64(i)), storage.Str(fmt.Sprintf("p%d-%d", i, b.r.Intn(500))))
		}
	case kDIM:
		name := b.fresh("pivoted")
		cols := []storage.ColumnDef{{Name: name + "_id", Class: schema.ClassInteger}}
		for q := 1; q <= 4; q++ {
			cols = append(cols, storage.ColumnDef{Name: fmt.Sprintf("q%d", q), Class: schema.ClassInteger})
		}
		t := b.db.CreateTable(name, cols)
		if err := t.SetPrimaryKey(name + "_id"); err != nil {
			panic(err)
		}
		for i := 0; i < b.rows; i++ {
			t.MustInsert(storage.Int(int64(i)),
				storage.Int(int64(b.r.Intn(5))), storage.Int(int64(b.r.Intn(5))),
				storage.Int(int64(b.r.Intn(5))), storage.Int(int64(b.r.Intn(5))))
		}
	case kIDT:
		b.hostColumn("num_text", schema.ClassText, func(i int) storage.Value {
			return storage.Str(fmt.Sprintf("%d", 100+i*3))
		})
	case kMTZ:
		b.hostColumn("logged_at", schema.ClassTimeNoTZ, func(i int) storage.Value {
			return storage.Time(int64(i) * 1e6)
		})
	case kMVA:
		b.hostColumn("member_ids", schema.ClassText, func(i int) storage.Value {
			return storage.Str(fmt.Sprintf("M%d,M%d,M%d", i, i+7, i+13))
		})
	case kRed:
		b.hostColumn("locale", schema.ClassChar, func(i int) storage.Value {
			return storage.Str("en-us")
		})
	case rules.IDNoDomainConstraint:
		b.hostColumn("rating", schema.ClassInteger, func(i int) storage.Value {
			return storage.Int(int64(i%5 + 1))
		})
	case kInfo:
		// birth_year + age pair on a fresh table (cross-column).
		name := b.fresh("persons")
		t := b.db.CreateTable(name, []storage.ColumnDef{
			{Name: name + "_id", Class: schema.ClassInteger},
			{Name: "birth_year", Class: schema.ClassInteger},
			{Name: "age", Class: schema.ClassInteger},
		})
		if err := t.SetPrimaryKey(name + "_id"); err != nil {
			panic(err)
		}
		for i := 0; i < b.rows; i++ {
			year := 1950 + i%50
			t.MustInsert(storage.Int(int64(i)), storage.Int(int64(year)), storage.Int(int64(2020-year)))
		}
	case kDenorm:
		name := b.fresh("addresses")
		t := b.db.CreateTable(name, []storage.ColumnDef{
			{Name: name + "_id", Class: schema.ClassInteger},
			{Name: "city", Class: schema.ClassChar},
			{Name: "zip", Class: schema.ClassChar},
		})
		if err := t.SetPrimaryKey(name + "_id"); err != nil {
			panic(err)
		}
		cities := []string{"Rome", "Oslo", "Lima", "Kyiv"}
		for i := 0; i < b.rows; i++ {
			c := i % len(cities)
			t.MustInsert(storage.Int(int64(i)), storage.Str(cities[c]), storage.Str(fmt.Sprintf("Z%04d", c)))
		}
	default:
		// Unknown seed type: create a clean table so totals still add
		// up structurally, but record nothing.
		b.cleanTable("misc")
	}
}

// hostColumn adds a single AP-bearing column to a host table (creating
// a fresh host every few columns). The host's other columns are clean.
func (b *kaggleBuilder) hostColumn(base string, class schema.TypeClass, gen func(i int) storage.Value) {
	col := fmt.Sprintf("%s_%d", base, b.seq)
	b.seq++
	// Rebuild a fresh host table each time: storage tables cannot grow
	// columns in place without ALTER, and independent tables keep the
	// seeds isolated.
	name := b.fresh("host")
	t := b.db.CreateTable(name, []storage.ColumnDef{
		{Name: name + "_key", Class: schema.ClassInteger},
		{Name: "filler", Class: schema.ClassChar},
		{Name: col, Class: class},
	})
	if err := t.SetPrimaryKey(name + "_key"); err != nil {
		panic(err)
	}
	for i := 0; i < b.rows; i++ {
		t.MustInsert(storage.Int(int64(i)), storage.Str(fmt.Sprintf("f%d-%d", i%41, b.r.Intn(999))), gen(i))
	}
	b.open = t
	b.openCols++
}
