package corpus

import (
	"fmt"

	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
	"sqlcheck/internal/xrand"
)

// GlobaLeaks builds the synthetic GlobaLeaks-shaped databases used by
// the performance experiments (Figures 3 and 8). The paper loaded 10M
// records into PostgreSQL; this builder produces the same logical
// designs at a configurable scale, in two variants per experiment: the
// anti-pattern design and the fixed design.

// GlobaLeaksOptions sizes the dataset.
type GlobaLeaksOptions struct {
	// Tenants and Users control table sizes; Hosting gets
	// UsersPerTenant links per tenant.
	Tenants, Users int
	UsersPerTenant int
	Seed           uint64
}

func (o GlobaLeaksOptions) withDefaults() GlobaLeaksOptions {
	if o.Tenants == 0 {
		o.Tenants = 2000
	}
	if o.Users == 0 {
		o.Users = 6000
	}
	if o.UsersPerTenant == 0 {
		o.UsersPerTenant = 3
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
	return o
}

// GlobaLeaksMVA builds the multi-valued-attribute design of Figure 1:
// Tenants carries a comma-separated User_IDs column.
func GlobaLeaksMVA(opts GlobaLeaksOptions) *storage.Database {
	opts = opts.withDefaults()
	r := xrand.New(opts.Seed)
	db := storage.NewDatabase("globaleaks-mva")

	users := db.CreateTable("Users", []storage.ColumnDef{
		{Name: "User_ID", Class: schema.ClassChar},
		{Name: "Name", Class: schema.ClassChar},
		{Name: "Role", Class: schema.ClassChar},
		{Name: "Email", Class: schema.ClassChar},
	})
	mustPK(users, "User_ID")
	for i := 0; i < opts.Users; i++ {
		users.MustInsert(
			storage.Str(fmt.Sprintf("U%d", i)),
			storage.Str(fmt.Sprintf("Name%d", i)),
			storage.Str(fmt.Sprintf("R%d", i%3+1)),
			storage.Str(fmt.Sprintf("u%d@leaks.org", i)),
		)
	}

	tenants := db.CreateTable("Tenants", []storage.ColumnDef{
		{Name: "Tenant_ID", Class: schema.ClassChar},
		{Name: "Zone_ID", Class: schema.ClassChar},
		{Name: "Active", Class: schema.ClassBool},
		{Name: "User_IDs", Class: schema.ClassText},
	})
	mustPK(tenants, "Tenant_ID")
	for i := 0; i < opts.Tenants; i++ {
		list := ""
		for k := 0; k < opts.UsersPerTenant; k++ {
			if k > 0 {
				list += ","
			}
			list += fmt.Sprintf("U%d", (i*opts.UsersPerTenant+k)%opts.Users)
		}
		tenants.MustInsert(
			storage.Str(fmt.Sprintf("T%d", i)),
			storage.Str(fmt.Sprintf("Z%d", r.Intn(40))),
			storage.Bool(r.Bool(0.9)),
			storage.Str(list),
		)
	}
	return db
}

// GlobaLeaksFixed builds the refactored design of Figure 2: a Hosting
// intersection table with indexes on both key columns.
func GlobaLeaksFixed(opts GlobaLeaksOptions) *storage.Database {
	opts = opts.withDefaults()
	r := xrand.New(opts.Seed)
	db := storage.NewDatabase("globaleaks-fixed")

	users := db.CreateTable("Users", []storage.ColumnDef{
		{Name: "User_ID", Class: schema.ClassChar},
		{Name: "Name", Class: schema.ClassChar},
		{Name: "Role", Class: schema.ClassChar},
		{Name: "Email", Class: schema.ClassChar},
	})
	mustPK(users, "User_ID")
	for i := 0; i < opts.Users; i++ {
		users.MustInsert(
			storage.Str(fmt.Sprintf("U%d", i)),
			storage.Str(fmt.Sprintf("Name%d", i)),
			storage.Str(fmt.Sprintf("R%d", i%3+1)),
			storage.Str(fmt.Sprintf("u%d@leaks.org", i)),
		)
	}

	tenants := db.CreateTable("Tenants", []storage.ColumnDef{
		{Name: "Tenant_ID", Class: schema.ClassChar},
		{Name: "Zone_ID", Class: schema.ClassChar},
		{Name: "Active", Class: schema.ClassBool},
	})
	mustPK(tenants, "Tenant_ID")
	for i := 0; i < opts.Tenants; i++ {
		tenants.MustInsert(
			storage.Str(fmt.Sprintf("T%d", i)),
			storage.Str(fmt.Sprintf("Z%d", r.Intn(40))),
			storage.Bool(r.Bool(0.9)),
		)
	}

	hosting := db.CreateTable("Hosting", []storage.ColumnDef{
		{Name: "User_ID", Class: schema.ClassChar},
		{Name: "Tenant_ID", Class: schema.ClassChar},
	})
	mustPK(hosting, "User_ID", "Tenant_ID")
	if err := hosting.AddForeignKey("fk_h_user", []string{"User_ID"}, "Users", []string{"User_ID"}, "CASCADE"); err != nil {
		panic(err)
	}
	if err := hosting.AddForeignKey("fk_h_tenant", []string{"Tenant_ID"}, "Tenants", []string{"Tenant_ID"}, "CASCADE"); err != nil {
		panic(err)
	}
	for i := 0; i < opts.Tenants; i++ {
		for k := 0; k < opts.UsersPerTenant; k++ {
			hosting.MustInsert(
				storage.Str(fmt.Sprintf("U%d", (i*opts.UsersPerTenant+k)%opts.Users)),
				storage.Str(fmt.Sprintf("T%d", i)),
			)
		}
	}
	// Single-column secondary indexes: the engine's planner uses
	// single-column leading indexes for point lookups, so both access
	// directions get one.
	if _, err := hosting.CreateIndex("idx_hosting_tenant", false, "Tenant_ID"); err != nil {
		panic(err)
	}
	if _, err := hosting.CreateIndex("idx_hosting_user", false, "User_ID"); err != nil {
		panic(err)
	}
	return db
}

func mustPK(t *storage.Table, cols ...string) {
	if err := t.SetPrimaryKey(cols...); err != nil {
		panic(err)
	}
}
