package corpus

import (
	"fmt"

	"sqlcheck/internal/rules"
	"sqlcheck/internal/xrand"
)

// Participant is one simulated user-study subject (paper §8.3).
type Participant struct {
	ID int
	// Skill in [0,1]: higher-skill participants inject fewer APs.
	Skill float64
	// Statements written for the 16 features of the bike e-commerce
	// application.
	Statements []string
	// Truth labels per statement.
	Truth map[int][]string
	// Engaged reports whether the participant considered suggestions
	// at all (20 of 23 did in the paper).
	Engaged bool
}

// UserStudyOptions sizes the simulation.
type UserStudyOptions struct {
	Participants int // default 23
	Features     int // default 16
	Seed         uint64
}

func (o UserStudyOptions) withDefaults() UserStudyOptions {
	if o.Participants == 0 {
		o.Participants = 23
	}
	if o.Features == 0 {
		o.Features = 16
	}
	if o.Seed == 0 {
		o.Seed = 23
	}
	return o
}

// featureTemplates are the bike e-commerce tasks; each has a clean
// realization and an AP-bearing one.
type featureTemplate struct {
	clean func(g *studyGen, f int) string
	dirty func(g *studyGen, f int) (string, []string)
}

type studyGen struct {
	r *xrand.Rand
	p int
}

func (g *studyGen) tbl(base string, f int) string {
	return fmt.Sprintf("%s_p%c_f%c", base, 'a'+byte(g.p%26), 'a'+byte(f%26))
}

var studyFeatures = []featureTemplate{
	{ // product catalog table
		clean: func(g *studyGen, f int) string {
			t := g.tbl("products", f)
			return fmt.Sprintf("CREATE TABLE %s (%s_id INT PRIMARY KEY, name VARCHAR(60) NOT NULL, price NUMERIC(10,2))", t, t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("products", f)
			return fmt.Sprintf("CREATE TABLE %s (name VARCHAR(60), price FLOAT)", t),
				[]string{rules.IDNoPrimaryKey, rules.IDRoundingErrors}
		},
	},
	{ // shopping cart
		clean: func(g *studyGen, f int) string {
			t := g.tbl("cart_items", f)
			return fmt.Sprintf("CREATE TABLE %s (cart_id INT, product_id INT, qty INT, PRIMARY KEY (cart_id, product_id))", t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("carts", f)
			return fmt.Sprintf("CREATE TABLE %s (cart_id INT PRIMARY KEY, product_ids TEXT)", t),
				[]string{rules.IDMultiValuedAttribute}
		},
	},
	{ // product search
		clean: func(g *studyGen, f int) string {
			t := g.tbl("products", f)
			return fmt.Sprintf("SELECT name, price FROM %s WHERE name LIKE 'bike%%'", t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("products", f)
			return fmt.Sprintf("SELECT * FROM %s WHERE name LIKE '%%bike%%'", t),
				[]string{rules.IDColumnWildcard, rules.IDPatternMatching}
		},
	},
	{ // order insertion
		clean: func(g *studyGen, f int) string {
			t := g.tbl("orders", f)
			return fmt.Sprintf("INSERT INTO %s (order_id, user_id, total) VALUES (%d, %d, 19.99)", t, g.r.Intn(9999), g.r.Intn(999))
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("orders", f)
			return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, 19.99)", t, g.r.Intn(9999), g.r.Intn(999)),
				[]string{rules.IDImplicitColumns}
		},
	},
	{ // featured random products
		clean: func(g *studyGen, f int) string {
			t := g.tbl("products", f)
			return fmt.Sprintf("SELECT name FROM %s WHERE %s_id >= %d ORDER BY %s_id LIMIT 3", t, t, g.r.Intn(500), t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("products", f)
			return fmt.Sprintf("SELECT name FROM %s ORDER BY RAND() LIMIT 3", t),
				[]string{rules.IDOrderByRand}
		},
	},
	{ // user roles
		clean: func(g *studyGen, f int) string {
			t := g.tbl("roles", f)
			return fmt.Sprintf("CREATE TABLE %s (role_id INT PRIMARY KEY, role_name VARCHAR(20) NOT NULL UNIQUE)", t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("accounts", f)
			return fmt.Sprintf("CREATE TABLE %s (acct_id INT PRIMARY KEY, role ENUM('buyer','seller','admin'))", t),
				[]string{rules.IDEnumeratedTypes}
		},
	},
	{ // customers with orders report
		clean: func(g *studyGen, f int) string {
			c, o := g.tbl("customers", f), g.tbl("orders", f)
			return fmt.Sprintf("SELECT c.name FROM %s c WHERE EXISTS (SELECT 1 FROM %s o WHERE o.cust_id = c.cust_id)", c, o)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			c, o := g.tbl("customers", f), g.tbl("orders", f)
			return fmt.Sprintf("SELECT DISTINCT c.name FROM %s c JOIN %s o ON o.cust_id = c.cust_id", c, o),
				[]string{rules.IDDistinctJoin}
		},
	},
	{ // account credentials
		clean: func(g *studyGen, f int) string {
			t := g.tbl("credentials", f)
			return fmt.Sprintf("CREATE TABLE %s (cred_id INT PRIMARY KEY, login VARCHAR(40) NOT NULL UNIQUE, pass_hash VARCHAR(80) NOT NULL)", t)
		},
		dirty: func(g *studyGen, f int) (string, []string) {
			t := g.tbl("credentials", f)
			return fmt.Sprintf("CREATE TABLE %s (cred_id INT PRIMARY KEY, login VARCHAR(40), password VARCHAR(40))", t),
				[]string{rules.IDReadablePassword}
		},
	},
}

// UserStudy simulates the participants writing SQL for each feature.
// Statement counts per participant vary with a mean near the paper's
// 42.9 (987 statements / 23 participants).
func UserStudy(opts UserStudyOptions) []*Participant {
	opts = opts.withDefaults()
	r := xrand.New(opts.Seed)
	var out []*Participant
	for p := 0; p < opts.Participants; p++ {
		part := &Participant{
			ID:      p,
			Skill:   0.15 + 0.8*r.Float64(),
			Truth:   map[int][]string{},
			Engaged: p >= 3 || opts.Participants < 10, // 3 of 23 disengage
		}
		g := &studyGen{r: r, p: p}
		// Each participant iterates the features 2-4 times (drafts,
		// refinements), writing one statement per pass.
		passes := 2 + r.Intn(3)
		for pass := 0; pass < passes; pass++ {
			for f := 0; f < opts.Features; f++ {
				tpl := studyFeatures[f%len(studyFeatures)]
				idx := len(part.Statements)
				// Lower skill → higher chance of the AP variant.
				if r.Bool(0.75 * (1 - part.Skill)) {
					sql, truth := tpl.dirty(g, f)
					part.Statements = append(part.Statements, sql)
					part.Truth[idx] = truth
				} else {
					part.Statements = append(part.Statements, tpl.clean(g, f))
				}
			}
		}
		out = append(out, part)
	}
	return out
}

// StudyTotals aggregates the simulation for reporting.
type StudyTotals struct {
	Participants   int
	Statements     int
	TruthInstances int
	MeanPerUser    float64
	EngagedUsers   int
}

// Totals computes aggregate statistics.
func Totals(parts []*Participant) StudyTotals {
	t := StudyTotals{Participants: len(parts)}
	for _, p := range parts {
		t.Statements += len(p.Statements)
		for _, ids := range p.Truth {
			t.TruthInstances += len(ids)
		}
		if p.Engaged {
			t.EngagedUsers++
		}
	}
	if len(parts) > 0 {
		t.MeanPerUser = float64(t.Statements) / float64(len(parts))
	}
	return t
}
