// Package qanalyze extracts per-statement facts from parsed SQL — the
// query-analysis half of ap-detect (paper §4.1). The facts feed both
// intra-query rules (which look at one statement's facts) and the
// context builder (which aggregates facts across the whole
// application for inter-query rules).
package qanalyze

import (
	"strings"

	"sqlcheck/internal/sqlast"
)

// TableUse records one table appearing in a statement.
type TableUse struct {
	Name  string
	Alias string
}

// ColumnUse records one column reference with its access role.
type ColumnUse struct {
	Table  string // alias or table name as written; may be ""
	Column string
	// Role is one of "select", "predicate", "join", "group", "order",
	// "set", "insert".
	Role string
}

// JoinEquality is an equality join condition between two columns.
type JoinEquality struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// PredicateFact describes a WHERE/HAVING conjunct over a column.
type PredicateFact struct {
	Table  string
	Column string
	// Op is the comparison operator (=, <, LIKE, REGEXP, IN, ...).
	Op string
	// Literal is the compared literal value when there is one.
	Literal string
	// LeadingWildcard marks LIKE '%...' patterns that defeat indexes.
	LeadingWildcard bool
}

// Facts is everything the rules need to know about one statement.
type Facts struct {
	Stmt sqlast.Statement
	Kind sqlast.StatementKind
	// Raw is the original SQL text.
	Raw string

	Tables  []TableUse
	Columns []ColumnUse

	// SELECT facts.
	SelectStar      bool
	Distinct        bool
	JoinCount       int
	JoinEqualities  []JoinEquality
	ExprJoin        bool // join ON uses LIKE/REGEXP/expressions, not equality
	Predicates      []PredicateFact
	GroupByColumns  []string
	OrderByRand     bool
	PatternMatching bool // LIKE with leading wildcard or REGEXP anywhere
	ConcatColumns   []ColumnUse
	SubqueryCount   int

	// INSERT facts.
	InsertNoColumns bool
	InsertColumns   []string
	InsertLiterals  [][]string // literal texts per row, for data-in-query rules

	// UPDATE facts.
	SetColumns []string

	// DDL facts are carried by the statement itself (rules inspect the
	// AST); Facts only mirrors what needs cross-query aggregation.
	CreatesTable string
	CreatesIndex *IndexFact
	DropsTable   string
}

// IndexFact summarizes a CREATE INDEX.
type IndexFact struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Analyze extracts facts from one parsed statement.
func Analyze(stmt sqlast.Statement) *Facts {
	f := &Facts{Stmt: stmt, Kind: stmt.Kind(), Raw: stmt.Raw()}
	switch s := stmt.(type) {
	case *sqlast.SelectStatement:
		analyzeSelect(f, s, true)
	case *sqlast.InsertStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Table})
		f.InsertNoColumns = len(s.Columns) == 0 && len(s.Rows) > 0
		f.InsertColumns = s.Columns
		for _, c := range s.Columns {
			f.Columns = append(f.Columns, ColumnUse{Table: s.Table, Column: c, Role: "insert"})
		}
		for _, row := range s.Rows {
			var lits []string
			for _, e := range row {
				if lit, ok := e.(*sqlast.Literal); ok {
					lits = append(lits, lit.Value)
				} else {
					lits = append(lits, "")
				}
			}
			f.InsertLiterals = append(f.InsertLiterals, lits)
		}
		if s.Select != nil {
			analyzeSelect(f, s.Select, false)
		}
	case *sqlast.UpdateStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Table, Alias: s.Alias})
		for _, a := range s.Set {
			f.SetColumns = append(f.SetColumns, a.Column.Column)
			f.Columns = append(f.Columns, ColumnUse{Table: orAlias(a.Column.Table, s.Table), Column: a.Column.Column, Role: "set"})
		}
		analyzeWhere(f, s.Where, s.Table, s.Alias)
	case *sqlast.DeleteStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Table})
		analyzeWhere(f, s.Where, s.Table, "")
	case *sqlast.CreateTableStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Name})
		f.CreatesTable = s.Name
	case *sqlast.CreateIndexStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Table})
		f.CreatesIndex = &IndexFact{Name: s.Name, Table: s.Table, Columns: s.Columns, Unique: s.Unique}
	case *sqlast.AlterTableStatement:
		f.Tables = append(f.Tables, TableUse{Name: s.Table})
	case *sqlast.DropStatement:
		if s.DropKind == sqlast.KindDropTable {
			f.DropsTable = s.Name
		}
	}
	return f
}

// AnalyzeAll analyzes each statement.
func AnalyzeAll(stmts []sqlast.Statement) []*Facts {
	out := make([]*Facts, len(stmts))
	for i, s := range stmts {
		out[i] = Analyze(s)
	}
	return out
}

func orAlias(t, def string) string {
	if t != "" {
		return t
	}
	return def
}

func analyzeSelect(f *Facts, s *sqlast.SelectStatement, top bool) {
	for _, t := range s.From {
		if t.Sub != nil {
			f.SubqueryCount++
			analyzeSelect(f, t.Sub, false)
			continue
		}
		f.Tables = append(f.Tables, TableUse{Name: t.Name, Alias: t.Alias})
	}
	baseTable, baseAlias := "", ""
	if len(s.From) > 0 && s.From[0].Sub == nil {
		baseTable, baseAlias = s.From[0].Name, s.From[0].Alias
	}
	if top {
		f.Distinct = f.Distinct || s.Distinct
	}
	for _, it := range s.Items {
		if it.Star {
			if top {
				f.SelectStar = true
			}
			continue
		}
		for _, cr := range sqlast.ColumnRefs(it.Expr) {
			f.Columns = append(f.Columns, ColumnUse{Table: cr.Table, Column: cr.Column, Role: "select"})
		}
		// || concatenation over columns (concatenate-nulls candidate).
		sqlast.WalkExpr(it.Expr, func(e sqlast.Expr) bool {
			if be, ok := e.(*sqlast.BinaryExpr); ok && be.Op == "||" {
				for _, side := range []sqlast.Expr{be.Left, be.Right} {
					if cr, ok := side.(*sqlast.ColumnRef); ok {
						f.ConcatColumns = append(f.ConcatColumns, ColumnUse{Table: cr.Table, Column: cr.Column, Role: "select"})
					}
				}
			}
			return true
		})
	}
	// Joins: count comma-list tables beyond the first plus explicit
	// JOIN clauses; record equality conditions.
	if len(s.From) > 1 {
		f.JoinCount += len(s.From) - 1
	}
	f.JoinCount += len(s.Joins)
	for _, j := range s.Joins {
		if j.Table.Sub != nil {
			f.SubqueryCount++
			analyzeSelect(f, j.Table.Sub, false)
		} else {
			f.Tables = append(f.Tables, TableUse{Name: j.Table.Name, Alias: j.Table.Alias})
		}
		if len(j.Using) > 0 {
			for _, c := range j.Using {
				f.JoinEqualities = append(f.JoinEqualities, JoinEquality{
					LeftTable: firstNonEmpty(baseAlias, baseTable), LeftColumn: c,
					RightTable: firstNonEmpty(j.Table.Alias, j.Table.Name), RightColumn: c,
				})
			}
			continue
		}
		eqFound := false
		for _, conj := range splitAnd(j.On) {
			be, ok := conj.(*sqlast.BinaryExpr)
			if !ok {
				continue
			}
			switch be.Op {
			case "=", "==":
				l, lok := be.Left.(*sqlast.ColumnRef)
				r, rok := be.Right.(*sqlast.ColumnRef)
				if lok && rok {
					eqFound = true
					f.JoinEqualities = append(f.JoinEqualities, JoinEquality{
						LeftTable: l.Table, LeftColumn: l.Column,
						RightTable: r.Table, RightColumn: r.Column,
					})
					f.Columns = append(f.Columns,
						ColumnUse{Table: l.Table, Column: l.Column, Role: "join"},
						ColumnUse{Table: r.Table, Column: r.Column, Role: "join"})
				}
			case "LIKE", "ILIKE", "REGEXP", "RLIKE", "GLOB", "SIMILAR TO":
				f.ExprJoin = true
				f.PatternMatching = true
			}
		}
		if j.On != nil && !eqFound {
			f.ExprJoin = true
		}
	}
	analyzeWhere(f, s.Where, baseTable, baseAlias)
	for _, g := range s.GroupBy {
		if cr, ok := g.(*sqlast.ColumnRef); ok {
			f.GroupByColumns = append(f.GroupByColumns, cr.Column)
			f.Columns = append(f.Columns, ColumnUse{Table: cr.Table, Column: cr.Column, Role: "group"})
		}
	}
	for _, o := range s.OrderBy {
		if fc, ok := o.Expr.(*sqlast.FuncCall); ok && (fc.Name == "RAND" || fc.Name == "RANDOM") {
			f.OrderByRand = true
		}
		if cr, ok := o.Expr.(*sqlast.ColumnRef); ok {
			f.Columns = append(f.Columns, ColumnUse{Table: cr.Table, Column: cr.Column, Role: "order"})
		}
	}
	for _, u := range s.Setop {
		analyzeSelect(f, u, top)
	}
	for _, c := range s.With {
		if c.Select != nil {
			f.SubqueryCount++
			analyzeSelect(f, c.Select, false)
		}
	}
}

func analyzeWhere(f *Facts, where sqlast.Expr, table, alias string) {
	for _, conj := range splitAnd(where) {
		sqlast.WalkExpr(conj, func(e sqlast.Expr) bool {
			if _, ok := e.(*sqlast.SubQuery); ok {
				f.SubqueryCount++
				return false
			}
			return true
		})
		be, ok := conj.(*sqlast.BinaryExpr)
		if !ok {
			continue
		}
		cr, lit := predicateParts(be)
		if cr == nil {
			continue
		}
		p := PredicateFact{
			Table:  orAlias(cr.Table, firstNonEmpty(alias, table)),
			Column: cr.Column,
			Op:     be.Op,
		}
		if lit != nil {
			p.Literal = lit.Value
			if (be.Op == "LIKE" || be.Op == "ILIKE") && strings.HasPrefix(lit.Value, "%") {
				p.LeadingWildcard = true
			}
		}
		switch be.Op {
		case "LIKE", "ILIKE":
			if p.LeadingWildcard || strings.Contains(p.Literal, "[[:") {
				f.PatternMatching = true
			}
		case "REGEXP", "RLIKE", "SIMILAR TO", "GLOB":
			f.PatternMatching = true
		}
		f.Predicates = append(f.Predicates, p)
		f.Columns = append(f.Columns, ColumnUse{Table: cr.Table, Column: cr.Column, Role: "predicate"})
	}
}

// predicateParts pulls the column side and (optional) literal side out
// of a binary predicate.
func predicateParts(be *sqlast.BinaryExpr) (*sqlast.ColumnRef, *sqlast.Literal) {
	if cr, ok := be.Left.(*sqlast.ColumnRef); ok {
		lit, _ := be.Right.(*sqlast.Literal)
		return cr, lit
	}
	if cr, ok := be.Right.(*sqlast.ColumnRef); ok {
		lit, _ := be.Left.(*sqlast.Literal)
		return cr, lit
	}
	return nil, nil
}

func splitAnd(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlast.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlast.Expr{e}
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}

// ResolveTable maps a table alias used in the statement back to the
// real table name ("" if unknown).
func (f *Facts) ResolveTable(aliasOrName string) string {
	for _, t := range f.Tables {
		if strings.EqualFold(t.Alias, aliasOrName) || strings.EqualFold(t.Name, aliasOrName) {
			return t.Name
		}
	}
	return ""
}

// MentionsTable reports whether the statement references the table.
func (f *Facts) MentionsTable(name string) bool {
	for _, t := range f.Tables {
		if strings.EqualFold(t.Name, name) {
			return true
		}
	}
	return false
}

// MentionsColumn reports whether the statement references
// table.column (table resolution through aliases).
func (f *Facts) MentionsColumn(table, column string) bool {
	for _, c := range f.Columns {
		if !strings.EqualFold(c.Column, column) {
			continue
		}
		if c.Table == "" {
			if len(f.Tables) == 1 && strings.EqualFold(f.Tables[0].Name, table) {
				return true
			}
			continue
		}
		if strings.EqualFold(f.ResolveTable(c.Table), table) {
			return true
		}
	}
	return false
}
