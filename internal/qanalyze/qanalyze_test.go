package qanalyze

import (
	"testing"

	"sqlcheck/internal/parser"
	"sqlcheck/internal/sqlast"
)

func facts(t *testing.T, sql string) *Facts {
	t.Helper()
	return Analyze(parser.Parse(sql))
}

func TestSelectStarAndDistinct(t *testing.T) {
	f := facts(t, "SELECT DISTINCT * FROM users")
	if !f.SelectStar || !f.Distinct {
		t.Errorf("facts = %+v", f)
	}
	f = facts(t, "SELECT id FROM users")
	if f.SelectStar {
		t.Error("false star")
	}
}

func TestJoinFacts(t *testing.T) {
	f := facts(t, `SELECT u.name FROM users u JOIN orders o ON u.id = o.user_id JOIN items i ON o.id = i.order_id`)
	if f.JoinCount != 2 {
		t.Errorf("joins = %d", f.JoinCount)
	}
	if len(f.JoinEqualities) != 2 {
		t.Fatalf("equalities = %+v", f.JoinEqualities)
	}
	je := f.JoinEqualities[0]
	if je.LeftColumn != "id" || je.RightColumn != "user_id" {
		t.Errorf("je = %+v", je)
	}
	if f.ExprJoin {
		t.Error("equality join flagged as expression join")
	}
}

func TestExprJoinDetected(t *testing.T) {
	f := facts(t, `SELECT * FROM Tenants t JOIN Users u ON t.User_IDs LIKE '%' || u.User_ID || '%'`)
	if !f.ExprJoin || !f.PatternMatching {
		t.Errorf("facts = %+v", f)
	}
}

func TestCommaJoinCounted(t *testing.T) {
	f := facts(t, "SELECT * FROM a, b, c WHERE a.x = b.x")
	if f.JoinCount != 2 {
		t.Errorf("joins = %d", f.JoinCount)
	}
}

func TestPredicateFacts(t *testing.T) {
	f := facts(t, "SELECT id FROM t WHERE name LIKE '%smith' AND age > 30 AND city = 'Rome'")
	if len(f.Predicates) != 3 {
		t.Fatalf("predicates = %+v", f.Predicates)
	}
	if !f.Predicates[0].LeadingWildcard || !f.PatternMatching {
		t.Error("leading wildcard missed")
	}
	if f.Predicates[1].Op != ">" || f.Predicates[2].Literal != "Rome" {
		t.Errorf("predicates = %+v", f.Predicates)
	}
}

func TestTrailingWildcardNotPatternMatching(t *testing.T) {
	f := facts(t, "SELECT id FROM t WHERE name LIKE 'smith%'")
	if f.PatternMatching {
		t.Error("prefix LIKE wrongly flagged (it is index-friendly)")
	}
}

func TestRegexpFlagged(t *testing.T) {
	f := facts(t, "SELECT id FROM t WHERE name REGEXP '^a.*b$'")
	if !f.PatternMatching {
		t.Error("REGEXP not flagged")
	}
}

func TestOrderByRand(t *testing.T) {
	if !facts(t, "SELECT * FROM t ORDER BY RAND()").OrderByRand {
		t.Error("RAND() missed")
	}
	if !facts(t, "SELECT * FROM t ORDER BY RANDOM()").OrderByRand {
		t.Error("RANDOM() missed")
	}
	if facts(t, "SELECT * FROM t ORDER BY name").OrderByRand {
		t.Error("false positive")
	}
}

func TestInsertFacts(t *testing.T) {
	f := facts(t, "INSERT INTO t VALUES (1, 'a')")
	if !f.InsertNoColumns {
		t.Error("implicit columns missed")
	}
	if len(f.InsertLiterals) != 1 || f.InsertLiterals[0][1] != "a" {
		t.Errorf("literals = %+v", f.InsertLiterals)
	}
	f = facts(t, "INSERT INTO t (a, b) VALUES (1, 'a')")
	if f.InsertNoColumns {
		t.Error("explicit columns flagged")
	}
	if len(f.InsertColumns) != 2 {
		t.Errorf("columns = %v", f.InsertColumns)
	}
}

func TestUpdateDeleteFacts(t *testing.T) {
	f := facts(t, "UPDATE users SET role = 'R5', score = 1 WHERE role = 'R2'")
	if len(f.SetColumns) != 2 || f.SetColumns[0] != "role" {
		t.Errorf("set = %v", f.SetColumns)
	}
	if len(f.Predicates) != 1 || f.Predicates[0].Column != "role" {
		t.Errorf("predicates = %+v", f.Predicates)
	}
	f = facts(t, "DELETE FROM logs WHERE ts < '2020'")
	if len(f.Predicates) != 1 || f.Predicates[0].Op != "<" {
		t.Errorf("predicates = %+v", f.Predicates)
	}
}

func TestDDLFacts(t *testing.T) {
	f := facts(t, "CREATE TABLE t (a INT)")
	if f.CreatesTable != "t" {
		t.Error("creates table")
	}
	f = facts(t, "CREATE UNIQUE INDEX i ON t (a, b)")
	if f.CreatesIndex == nil || !f.CreatesIndex.Unique || len(f.CreatesIndex.Columns) != 2 {
		t.Errorf("index fact = %+v", f.CreatesIndex)
	}
	f = facts(t, "DROP TABLE t")
	if f.DropsTable != "t" {
		t.Error("drops table")
	}
}

func TestConcatColumns(t *testing.T) {
	f := facts(t, "SELECT first_name || ' ' || last_name FROM users")
	if len(f.ConcatColumns) < 2 {
		t.Errorf("concat columns = %+v", f.ConcatColumns)
	}
}

func TestSubqueryCount(t *testing.T) {
	f := facts(t, "SELECT * FROM (SELECT id FROM a) s WHERE id IN (SELECT x FROM b)")
	if f.SubqueryCount != 2 {
		t.Errorf("subqueries = %d", f.SubqueryCount)
	}
}

func TestResolveAndMentions(t *testing.T) {
	f := facts(t, "SELECT u.name FROM users u JOIN orders o ON u.id = o.uid WHERE o.total > 5")
	if f.ResolveTable("u") != "users" || f.ResolveTable("orders") != "orders" {
		t.Error("ResolveTable")
	}
	if f.ResolveTable("zz") != "" {
		t.Error("unknown alias resolved")
	}
	if !f.MentionsTable("users") || f.MentionsTable("ghost") {
		t.Error("MentionsTable")
	}
	if !f.MentionsColumn("orders", "total") {
		t.Error("MentionsColumn qualified")
	}
	if f.MentionsColumn("users", "total") {
		t.Error("MentionsColumn wrong table")
	}
	// Unqualified column on a single-table query resolves to it.
	f2 := facts(t, "SELECT name FROM users WHERE age > 3")
	if !f2.MentionsColumn("users", "age") {
		t.Error("unqualified column resolution")
	}
}

func TestGroupByFacts(t *testing.T) {
	f := facts(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if len(f.GroupByColumns) != 1 || f.GroupByColumns[0] != "dept" {
		t.Errorf("group = %v", f.GroupByColumns)
	}
}

func TestAnalyzeAll(t *testing.T) {
	fs := AnalyzeAll(parser.ParseAll("SELECT 1; INSERT INTO t VALUES (1)"))
	if len(fs) != 2 || fs[0].Kind != sqlast.KindSelect || fs[1].Kind != sqlast.KindInsert {
		t.Errorf("facts = %+v", fs)
	}
}

func TestInsertSelectAnalyzed(t *testing.T) {
	f := facts(t, "INSERT INTO t (a) SELECT x FROM src WHERE y LIKE '%q'")
	if !f.PatternMatching {
		t.Error("nested select facts not extracted")
	}
	if !f.MentionsTable("src") {
		t.Error("nested select tables missed")
	}
}

func TestUnionAnalyzed(t *testing.T) {
	f := facts(t, "SELECT * FROM a UNION SELECT * FROM b")
	if !f.MentionsTable("a") || !f.MentionsTable("b") {
		t.Error("union tables")
	}
}
