package fix

import (
	"fmt"
	"regexp"
	"strings"

	"sqlcheck/internal/rules"
	"sqlcheck/internal/sqlast"
)

// fixMultiValuedAttribute implements the paper's flagship repair
// (§2.1.1, §6.1): replace a delimiter-separated list column with an
// intersection table, emit the DDL for it, and rewrite the queries
// that pattern-match against the list column into indexed equi-joins.
func (e *Engine) fixMultiValuedAttribute(f rules.Finding) Fix {
	table, col := f.Table, f.Column
	if table == "" {
		return Fix{Textual: "replace the delimiter-separated list column with an intersection table (one row per value)"}
	}
	if col == "" {
		col = e.guessListColumn(f)
	}
	if col == "" {
		return Fix{Textual: fmt.Sprintf("identify the list column on %s and replace it with an intersection table", table)}
	}

	t := e.tableOf(table)
	ownerKey := ""
	if t != nil && len(t.PrimaryKey) == 1 {
		ownerKey = t.PrimaryKey[0]
	}
	valueCol := singularize(col)
	xref := fmt.Sprintf("%s_%s_map", table, valueCol)

	var stmts []string
	if ownerKey != "" {
		stmts = append(stmts,
			fmt.Sprintf("CREATE TABLE %s (%s VARCHAR(30) REFERENCES %s(%s), %s VARCHAR(30) NOT NULL, PRIMARY KEY (%s, %s))",
				xref, ownerKey, table, ownerKey, valueCol, ownerKey, valueCol),
			fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s", table, col),
		)
	} else {
		stmts = append(stmts,
			fmt.Sprintf("CREATE TABLE %s (%s_key VARCHAR(30), %s VARCHAR(30) NOT NULL)", xref, table, valueCol),
			fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s", table, col),
		)
	}

	out := Fix{
		NewStatements: stmts,
		Textual: fmt.Sprintf("split each %s.%s list into rows of %s, then drop the column; "+
			"the DBMS can now index %s.%s and enforce referential integrity", table, col, xref, xref, valueCol),
	}

	// Rewrite the offending query when it has the canonical shapes.
	if sel, ok := e.stmtOf(f).(*sqlast.SelectStatement); ok && ownerKey != "" {
		if fixed := rewriteMVASelect(sel, table, col, xref, ownerKey, valueCol); fixed != nil {
			out.Rewrites = rewrite(f.QueryIndex, sel.Raw(), fixed)
		}
	}
	return out
}

// guessListColumn finds the column the finding's query pattern-matches
// against, looking in WHERE predicates and join ON clauses.
func (e *Engine) guessListColumn(f rules.Finding) string {
	if f.QueryIndex < 0 || f.QueryIndex >= len(e.ctx.Facts) {
		return ""
	}
	for _, p := range e.ctx.Facts[f.QueryIndex].Predicates {
		if p.Op == "LIKE" || p.Op == "ILIKE" || p.Op == "REGEXP" || p.Op == "RLIKE" {
			return p.Column
		}
	}
	sel, ok := e.ctx.Facts[f.QueryIndex].Stmt.(*sqlast.SelectStatement)
	if !ok {
		return ""
	}
	for _, j := range sel.Joins {
		for _, conj := range splitAnd(j.On) {
			be, ok := conj.(*sqlast.BinaryExpr)
			if !ok {
				continue
			}
			switch be.Op {
			case "LIKE", "ILIKE", "REGEXP", "RLIKE", "GLOB":
				if cr, ok := be.Left.(*sqlast.ColumnRef); ok {
					return cr.Column
				}
				if cr, ok := be.Right.(*sqlast.ColumnRef); ok {
					return cr.Column
				}
			}
		}
	}
	return ""
}

// singularize derives the per-value column name from the list column
// name (User_IDs -> User_ID, tags -> tag).
func singularize(col string) string {
	switch {
	case strings.HasSuffix(strings.ToLower(col), "ids"):
		return col[:len(col)-1]
	case strings.HasSuffix(strings.ToLower(col), "ses"):
		return col[:len(col)-2]
	case strings.HasSuffix(strings.ToLower(col), "s") && len(col) > 1:
		return col[:len(col)-1]
	default:
		return col + "_value"
	}
}

// patternToken extracts the searched value out of a LIKE/REGEXP
// pattern such as '%U1%' or '[[:<:]]U1[[:>:]]'.
var tokenRe = regexp.MustCompile(`[\w.@-]+`)

func patternToken(pattern string) string {
	p := strings.ReplaceAll(pattern, "[[:<:]]", "")
	p = strings.ReplaceAll(p, "[[:>:]]", "")
	p = strings.Trim(p, "%_^$")
	m := tokenRe.FindString(p)
	if m == p && m != "" {
		return m
	}
	// Pattern has structure beyond a single token: not safely
	// extractable.
	if m != "" && strings.Trim(p, "%_") == m {
		return m
	}
	return ""
}

// rewriteMVASelect rewrites the paper's Task #1 and Task #2 shapes.
func rewriteMVASelect(sel *sqlast.SelectStatement, table, col, xref, ownerKey, valueCol string) *sqlast.SelectStatement {
	if len(sel.From) != 1 || sel.From[0].Sub != nil || !strings.EqualFold(sel.From[0].Name, table) {
		return rewriteMVAJoin(sel, table, col, xref, ownerKey, valueCol)
	}
	if len(sel.Joins) > 0 {
		return rewriteMVAJoin(sel, table, col, xref, ownerKey, valueCol)
	}
	// Task #1: SELECT ... FROM t WHERE listcol LIKE '<pattern>'.
	conjs := splitAnd(sel.Where)
	matchIdx := -1
	var token string
	for i, c := range conjs {
		be, ok := c.(*sqlast.BinaryExpr)
		if !ok {
			continue
		}
		if be.Op != "LIKE" && be.Op != "ILIKE" && be.Op != "REGEXP" && be.Op != "RLIKE" {
			continue
		}
		cr, ok := be.Left.(*sqlast.ColumnRef)
		if !ok || !strings.EqualFold(cr.Column, col) {
			continue
		}
		lit, ok := be.Right.(*sqlast.Literal)
		if !ok {
			return nil
		}
		token = patternToken(lit.Value)
		if token == "" {
			return nil
		}
		matchIdx = i
		break
	}
	if matchIdx < 0 {
		return nil
	}
	// SELECT t.* FROM xref m JOIN t ON m.<ownerKey> = t.<ownerKey>
	// WHERE m.<valueCol> = '<token>' [AND rest...]
	alias := "t"
	fixed := &sqlast.SelectStatement{
		Distinct: sel.Distinct,
		Items:    retargetItems(sel.Items, alias),
		From:     []sqlast.TableRef{{Name: xref, Alias: "m"}},
		Joins: []sqlast.Join{{
			Kind:  "INNER",
			Table: sqlast.TableRef{Name: table, Alias: alias},
			On: &sqlast.BinaryExpr{Op: "=",
				Left:  &sqlast.ColumnRef{Table: "m", Column: ownerKey},
				Right: &sqlast.ColumnRef{Table: alias, Column: ownerKey}},
		}},
		OrderBy: sel.OrderBy,
		Limit:   sel.Limit,
		Offset:  sel.Offset,
	}
	where := sqlast.Expr(&sqlast.BinaryExpr{Op: "=",
		Left:  &sqlast.ColumnRef{Table: "m", Column: valueCol},
		Right: &sqlast.Literal{LitKind: "string", Value: token}})
	for i, cnj := range conjs {
		if i == matchIdx {
			continue
		}
		where = &sqlast.BinaryExpr{Op: "AND", Left: where, Right: qualifyExpr(cnj, alias)}
	}
	fixed.Where = where
	return fixed
}

// rewriteMVAJoin rewrites Task #2: JOIN ... ON listcol LIKE expr
// becomes an equi-join through the intersection table.
func rewriteMVAJoin(sel *sqlast.SelectStatement, table, col, xref, ownerKey, valueCol string) *sqlast.SelectStatement {
	if len(sel.From) != 1 || len(sel.Joins) != 1 {
		return nil
	}
	base := sel.From[0]
	join := sel.Joins[0]
	// Identify which side owns the list column.
	ownerRef := base
	otherRef := join.Table
	if !strings.EqualFold(base.Name, table) {
		if !strings.EqualFold(join.Table.Name, table) {
			return nil
		}
		ownerRef, otherRef = join.Table, base
	}
	// The ON clause must be a pattern match touching the list column.
	be, ok := join.On.(*sqlast.BinaryExpr)
	if !ok || (be.Op != "LIKE" && be.Op != "ILIKE" && be.Op != "REGEXP" && be.Op != "RLIKE") {
		return nil
	}
	foundList := false
	for _, cr := range sqlast.ColumnRefs(be) {
		if strings.EqualFold(cr.Column, col) {
			foundList = true
		}
	}
	if !foundList {
		return nil
	}
	// The joined value: a column of the other table appearing in the
	// pattern expression.
	var joinedVal *sqlast.ColumnRef
	for _, cr := range sqlast.ColumnRefs(be.Right) {
		if !strings.EqualFold(cr.Column, col) {
			joinedVal = cr
			break
		}
	}
	if joinedVal == nil {
		for _, cr := range sqlast.ColumnRefs(be.Left) {
			if !strings.EqualFold(cr.Column, col) {
				joinedVal = cr
			}
		}
	}
	if joinedVal == nil {
		return nil
	}
	ownerAlias := ownerRef.Alias
	if ownerAlias == "" {
		ownerAlias = ownerRef.Name
	}
	otherAlias := otherRef.Alias
	if otherAlias == "" {
		otherAlias = otherRef.Name
	}
	fixed := &sqlast.SelectStatement{
		Distinct: sel.Distinct,
		Items:    sel.Items,
		From:     []sqlast.TableRef{{Name: xref, Alias: "m"}},
		Joins: []sqlast.Join{
			{
				Kind:  "INNER",
				Table: sqlast.TableRef{Name: ownerRef.Name, Alias: ownerAlias},
				On: &sqlast.BinaryExpr{Op: "=",
					Left:  &sqlast.ColumnRef{Table: "m", Column: ownerKey},
					Right: &sqlast.ColumnRef{Table: ownerAlias, Column: ownerKey}},
			},
			{
				Kind:  "INNER",
				Table: sqlast.TableRef{Name: otherRef.Name, Alias: otherAlias},
				On: &sqlast.BinaryExpr{Op: "=",
					Left:  &sqlast.ColumnRef{Table: "m", Column: valueCol},
					Right: &sqlast.ColumnRef{Table: joinedVal.Table, Column: joinedVal.Column}},
			},
		},
		Where:   sel.Where,
		OrderBy: sel.OrderBy,
		Limit:   sel.Limit,
	}
	return fixed
}

// retargetItems qualifies bare stars with the rewritten table alias.
func retargetItems(items []sqlast.SelectItem, alias string) []sqlast.SelectItem {
	out := make([]sqlast.SelectItem, len(items))
	copy(out, items)
	for i := range out {
		if out[i].Star && out[i].StarTable == "" {
			out[i].StarTable = alias
		}
	}
	return out
}

// qualifyExpr prefixes unqualified column refs with the alias.
func qualifyExpr(e sqlast.Expr, alias string) sqlast.Expr {
	return mapExpr(e, func(x sqlast.Expr) sqlast.Expr {
		if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table == "" && cr.Column != "*" {
			return &sqlast.ColumnRef{Table: alias, Column: cr.Column}
		}
		return x
	})
}

func splitAnd(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlast.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlast.Expr{e}
}
