// Package fix implements ap-fix (paper §6): rule-based repair of
// detected anti-patterns. Each repair rule is the action half of the
// paper's (detection, action) rule pairs: given a finding and the
// application context it either transforms the offending statement's
// parse tree and re-serializes it, synthesizes new DDL/DML (e.g. the
// intersection table of §2.1.1), or — when no unambiguous rewrite
// exists — returns a textual fix tailored to the context (Algorithm 4,
// line 12). The engine also computes the set of other statements
// impacted by a fix.
package fix

import (
	"fmt"
	"sort"
	"strings"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/rules"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/sqlast"
)

// Rewrite is one transformed statement.
type Rewrite struct {
	QueryIndex int
	Original   string
	Fixed      string
}

// Fix is the repair suggested for one finding.
type Fix struct {
	Finding rules.Finding
	// Rewrites are unambiguous statement transformations.
	Rewrites []Rewrite
	// NewStatements are additional statements to run (new tables,
	// constraints, indexes).
	NewStatements []string
	// Textual carries guidance when automation would be ambiguous.
	Textual string
	// Impacted lists other statements the fix forces changes to.
	Impacted []int
}

// Automated reports whether the fix includes executable output.
func (f Fix) Automated() bool {
	return len(f.Rewrites) > 0 || len(f.NewStatements) > 0
}

// Engine is the query repair engine bound to one application context.
type Engine struct {
	ctx *appctx.Context
}

// New builds an engine.
func New(ctx *appctx.Context) *Engine { return &Engine{ctx: ctx} }

// repairFunc is the action half of a repair rule.
type repairFunc func(e *Engine, f rules.Finding) Fix

// repairRules maps rule IDs to their repair actions.
var repairRules = map[string]repairFunc{
	rules.IDImplicitColumns:        (*Engine).fixImplicitColumns,
	rules.IDColumnWildcard:         (*Engine).fixColumnWildcard,
	rules.IDConcatenateNulls:       (*Engine).fixConcatenateNulls,
	rules.IDMultiValuedAttribute:   (*Engine).fixMultiValuedAttribute,
	rules.IDNoPrimaryKey:           (*Engine).fixNoPrimaryKey,
	rules.IDNoForeignKey:           (*Engine).fixNoForeignKey,
	rules.IDEnumeratedTypes:        (*Engine).fixEnumeratedTypes,
	rules.IDIndexOveruse:           (*Engine).fixIndexOveruse,
	rules.IDIndexUnderuse:          (*Engine).fixIndexUnderuse,
	rules.IDOrderByRand:            (*Engine).fixOrderByRand,
	rules.IDDistinctJoin:           (*Engine).fixDistinctJoin,
	rules.IDRoundingErrors:         (*Engine).fixRoundingErrors,
	rules.IDMissingTimezone:        (*Engine).fixMissingTimezone,
	rules.IDIncorrectDataType:      (*Engine).fixIncorrectDataType,
	rules.IDRedundantColumn:        (*Engine).fixRedundantColumn,
	rules.IDNoDomainConstraint:     (*Engine).fixNoDomainConstraint,
	rules.IDInformationDuplication: (*Engine).fixInformationDuplication,
	rules.IDDenormalizedTable:      (*Engine).fixDenormalizedTable,
}

// textualOnly holds tailored guidance for rules whose fixes are never
// automatable.
var textualOnly = map[string]string{
	rules.IDGenericPrimaryKey: "rename the generic id column to a domain key (e.g. %[1]s_id) or adopt a natural key; generic ids invite duplicate logical rows",
	rules.IDDataInMetadata:    "pivot the value-bearing columns of %[1]s into rows of a child table (one row per value, with a discriminator column)",
	rules.IDAdjacencyList:     "for deep hierarchies in %[1]s, store a path enumeration or closure table, or use recursive CTEs where the DBMS optimizes them",
	rules.IDGodTable:          "split %[1]s by update pattern: group columns that change together into separate tables sharing the key",
	rules.IDCloneTable:        "merge the %[1]s clones into one table with a discriminator column (and native partitioning if volume requires it)",
	rules.IDExternalDataStorage: "store the file bytes in a BLOB column inside the transaction boundary, or keep the external store but add a checksum " +
		"column and a reconciliation job for %[1]s.%[2]s",
	rules.IDPatternMatching:  "add a full-text / trigram index for the searched column, or extract the searched token into its own indexed column",
	rules.IDTooManyJoins:     "materialize the hot join subset as a summary table, or denormalize the most-read attributes; verify the ORM is not generating the join chain",
	rules.IDReadablePassword: "store only salted password hashes (bcrypt/argon2); hash in the application before the value reaches SQL",
}

// Repair produces the fix for one finding (Algorithm 4 body).
func (e *Engine) Repair(f rules.Finding) Fix {
	if fn, ok := repairRules[f.RuleID]; ok {
		out := fn(e, f)
		out.Finding = f
		if len(out.Impacted) == 0 {
			out.Impacted = e.ImpactedQueries(f)
		}
		return out
	}
	if tpl, ok := textualOnly[f.RuleID]; ok {
		return Fix{Finding: f, Textual: fmt.Sprintf(tpl, orUnknown(f.Table), orUnknown(f.Column)),
			Impacted: e.ImpactedQueries(f)}
	}
	return Fix{Finding: f, Textual: "no automated fix available; review " + f.Message}
}

// RepairAll fixes every finding.
func (e *Engine) RepairAll(findings []rules.Finding) []Fix {
	out := make([]Fix, 0, len(findings))
	for _, f := range findings {
		out = append(out, e.Repair(f))
	}
	return out
}

// ImpactedQueries returns indexes of statements that reference the
// finding's site and would need revisiting after the fix (Algorithm 4,
// GetImpactedQueries).
func (e *Engine) ImpactedQueries(f rules.Finding) []int {
	if f.Table == "" {
		return nil
	}
	var out []int
	for qi, facts := range e.ctx.Facts {
		if qi == f.QueryIndex {
			continue
		}
		if f.Column != "" {
			if facts.MentionsColumn(f.Table, f.Column) {
				out = append(out, qi)
			}
			continue
		}
		if facts.MentionsTable(f.Table) {
			out = append(out, qi)
		}
	}
	sort.Ints(out)
	return out
}

func orUnknown(s string) string {
	if s == "" {
		return "<unknown>"
	}
	return s
}

// stmtOf returns the parsed statement for a query-scoped finding.
func (e *Engine) stmtOf(f rules.Finding) sqlast.Statement {
	if f.QueryIndex < 0 || f.QueryIndex >= len(e.ctx.Facts) {
		return nil
	}
	return e.ctx.Facts[f.QueryIndex].Stmt
}

func (e *Engine) tableOf(name string) *schema.Table {
	if name == "" {
		return nil
	}
	return e.ctx.Schema.Table(name)
}

// rewrite packages a single-statement transformation.
func rewrite(qi int, original string, stmt sqlast.Statement) []Rewrite {
	return []Rewrite{{QueryIndex: qi, Original: original, Fixed: sqlast.SQL(stmt)}}
}

// ---------------------------------------------------------------------------
// Query transformations
// ---------------------------------------------------------------------------

func (e *Engine) fixImplicitColumns(f rules.Finding) Fix {
	ins, ok := e.stmtOf(f).(*sqlast.InsertStatement)
	if !ok {
		return Fix{Textual: "specify the column list explicitly in the INSERT statement"}
	}
	t := e.tableOf(ins.Table)
	if t == nil || len(t.Columns) == 0 {
		// Example 2: the intra-query rule detects, but the fix needs
		// the application context (the table's schema).
		return Fix{Textual: fmt.Sprintf("specify the column list: INSERT INTO %s (<columns...>) VALUES (...); schema for %q is not in context", ins.Table, ins.Table)}
	}
	fixed := *ins
	fixed.Columns = nil
	for _, c := range t.Columns {
		fixed.Columns = append(fixed.Columns, c.Name)
	}
	if len(ins.Rows) > 0 && len(ins.Rows[0]) != len(fixed.Columns) {
		return Fix{Textual: fmt.Sprintf("INSERT supplies %d values but %s has %d columns; align the VALUES tuple with an explicit column list",
			len(ins.Rows[0]), t.Name, len(t.Columns))}
	}
	return Fix{Rewrites: rewrite(f.QueryIndex, ins.Raw(), &fixed)}
}

func (e *Engine) fixColumnWildcard(f rules.Finding) Fix {
	sel, ok := e.stmtOf(f).(*sqlast.SelectStatement)
	if !ok {
		return Fix{Textual: "replace the wildcard with the columns the application reads"}
	}
	fixed := *sel
	fixed.Items = nil
	changed := false
	for _, it := range sel.Items {
		if !it.Star {
			fixed.Items = append(fixed.Items, it)
			continue
		}
		// Expand the star from the schema.
		expanded := false
		for _, tu := range tablesOfSelect(sel) {
			if it.StarTable != "" && !strings.EqualFold(it.StarTable, tu.alias) && !strings.EqualFold(it.StarTable, tu.name) {
				continue
			}
			t := e.tableOf(tu.name)
			if t == nil {
				continue
			}
			qual := tu.alias
			if qual == "" && (len(sel.From)+len(sel.Joins)) > 1 {
				qual = tu.name
			}
			for _, c := range t.Columns {
				fixed.Items = append(fixed.Items, sqlast.SelectItem{
					Expr: &sqlast.ColumnRef{Table: qual, Column: c.Name},
				})
			}
			expanded = true
		}
		if !expanded {
			return Fix{Textual: "replace SELECT * with an explicit column list (table schema not in context)"}
		}
		changed = true
	}
	if !changed {
		return Fix{Textual: "replace SELECT * with an explicit column list"}
	}
	return Fix{Rewrites: rewrite(f.QueryIndex, sel.Raw(), &fixed)}
}

type tableUse struct{ name, alias string }

func tablesOfSelect(sel *sqlast.SelectStatement) []tableUse {
	var out []tableUse
	for _, t := range sel.From {
		if t.Sub == nil {
			out = append(out, tableUse{t.Name, t.Alias})
		}
	}
	for _, j := range sel.Joins {
		if j.Table.Sub == nil {
			out = append(out, tableUse{j.Table.Name, j.Table.Alias})
		}
	}
	return out
}

func (e *Engine) fixConcatenateNulls(f rules.Finding) Fix {
	sel, ok := e.stmtOf(f).(*sqlast.SelectStatement)
	if !ok {
		return Fix{Textual: "wrap nullable operands of || in COALESCE(col, '')"}
	}
	nullable := func(cr *sqlast.ColumnRef) bool {
		// Rewrite the specific column the finding names; with schema,
		// any nullable column in the concatenation.
		if strings.EqualFold(cr.Column, f.Column) {
			return true
		}
		for _, tu := range tablesOfSelect(sel) {
			if t := e.tableOf(tu.name); t != nil {
				if c := t.Column(cr.Column); c != nil {
					return !c.NotNull
				}
			}
		}
		return false
	}
	fixed := *sel
	fixed.Items = make([]sqlast.SelectItem, len(sel.Items))
	copy(fixed.Items, sel.Items)
	changed := false
	for i, it := range fixed.Items {
		if it.Star || it.Expr == nil {
			continue
		}
		newExpr := mapExpr(it.Expr, func(x sqlast.Expr) sqlast.Expr {
			be, ok := x.(*sqlast.BinaryExpr)
			if !ok || be.Op != "||" {
				return x
			}
			nb := *be
			for _, side := range []*sqlast.Expr{&nb.Left, &nb.Right} {
				if cr, ok := (*side).(*sqlast.ColumnRef); ok && nullable(cr) {
					*side = &sqlast.FuncCall{Name: "COALESCE", Args: []sqlast.Expr{cr, &sqlast.Literal{LitKind: "string", Value: ""}}}
					changed = true
				}
			}
			return &nb
		})
		fixed.Items[i].Expr = newExpr
	}
	if !changed {
		return Fix{Textual: "wrap nullable operands of || in COALESCE(col, '')"}
	}
	return Fix{Rewrites: rewrite(f.QueryIndex, sel.Raw(), &fixed)}
}

// mapExpr rebuilds an expression bottom-up, applying fn to every node.
func mapExpr(e sqlast.Expr, fn func(sqlast.Expr) sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		nb := *x
		nb.Left = mapExpr(x.Left, fn)
		nb.Right = mapExpr(x.Right, fn)
		return fn(&nb)
	case *sqlast.UnaryExpr:
		nu := *x
		nu.X = mapExpr(x.X, fn)
		return fn(&nu)
	case *sqlast.FuncCall:
		nf := *x
		nf.Args = make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			nf.Args[i] = mapExpr(a, fn)
		}
		return fn(&nf)
	case *sqlast.ExprList:
		nl := *x
		nl.Items = make([]sqlast.Expr, len(x.Items))
		for i, it := range x.Items {
			nl.Items[i] = mapExpr(it, fn)
		}
		return fn(&nl)
	case *sqlast.CaseExpr:
		nc := *x
		nc.Whens = make([]sqlast.Expr, len(x.Whens))
		for i, w := range x.Whens {
			nc.Whens[i] = mapExpr(w, fn)
		}
		nc.Thens = make([]sqlast.Expr, len(x.Thens))
		for i, th := range x.Thens {
			nc.Thens[i] = mapExpr(th, fn)
		}
		nc.Else = mapExpr(x.Else, fn)
		return fn(&nc)
	default:
		return fn(e)
	}
}

func (e *Engine) fixOrderByRand(f rules.Finding) Fix {
	sel, ok := e.stmtOf(f).(*sqlast.SelectStatement)
	if !ok {
		return Fix{Textual: "replace ORDER BY RAND() with key-based sampling"}
	}
	table := ""
	if len(sel.From) > 0 {
		table = sel.From[0].Name
	}
	key := "id"
	if t := e.tableOf(table); t != nil && len(t.PrimaryKey) == 1 {
		key = t.PrimaryKey[0]
	}
	return Fix{Textual: fmt.Sprintf(
		"avoid ORDER BY RAND(): pick a random key first (e.g. SELECT ... FROM %s WHERE %s >= <random key> ORDER BY %s LIMIT n), or sample ids in the application",
		orUnknown(table), key, key)}
}

func (e *Engine) fixDistinctJoin(f rules.Finding) Fix {
	sel, ok := e.stmtOf(f).(*sqlast.SelectStatement)
	if !ok || len(sel.Joins) != 1 || len(sel.From) != 1 {
		return Fix{Textual: "replace DISTINCT-over-JOIN with WHERE EXISTS (semi-join) against the joined table"}
	}
	// Rewrite SELECT DISTINCT <outer cols> FROM a JOIN b ON cond
	// as SELECT <outer cols> FROM a WHERE EXISTS (SELECT 1 FROM b WHERE cond)
	// when the select list only touches the outer table.
	outer := sel.From[0]
	inner := sel.Joins[0]
	outerNames := map[string]bool{
		strings.ToLower(outer.Name):  true,
		strings.ToLower(outer.Alias): true,
	}
	for _, it := range sel.Items {
		if it.Star && it.StarTable == "" {
			return Fix{Textual: "replace DISTINCT-over-JOIN with WHERE EXISTS; SELECT * mixes both tables so the rewrite is ambiguous"}
		}
		refs := sqlast.ColumnRefs(it.Expr)
		if it.Star {
			if !outerNames[strings.ToLower(it.StarTable)] {
				return Fix{Textual: "replace DISTINCT-over-JOIN with WHERE EXISTS against the joined table"}
			}
			continue
		}
		for _, r := range refs {
			if r.Table != "" && !outerNames[strings.ToLower(r.Table)] {
				return Fix{Textual: "replace DISTINCT-over-JOIN with WHERE EXISTS against the joined table"}
			}
		}
	}
	sub := &sqlast.SelectStatement{
		Items: []sqlast.SelectItem{{Expr: &sqlast.Literal{LitKind: "number", Value: "1"}}},
		From:  []sqlast.TableRef{inner.Table},
		Where: inner.On,
	}
	exists := &sqlast.FuncCall{Name: "EXISTS", Args: []sqlast.Expr{&sqlast.SubQuery{Select: sub}}}
	fixed := *sel
	fixed.Distinct = false
	fixed.Joins = nil
	if fixed.Where != nil {
		fixed.Where = &sqlast.BinaryExpr{Op: "AND", Left: fixed.Where, Right: exists}
	} else {
		fixed.Where = exists
	}
	return Fix{Rewrites: rewrite(f.QueryIndex, sel.Raw(), &fixed)}
}

// ---------------------------------------------------------------------------
// Schema transformations
// ---------------------------------------------------------------------------

func (e *Engine) fixNoPrimaryKey(f rules.Finding) Fix {
	t := e.tableOf(f.Table)
	candidate := ""
	if t != nil {
		for _, c := range t.Columns {
			if c.Unique {
				candidate = c.Name
				break
			}
		}
		if candidate == "" {
			for _, c := range t.Columns {
				if strings.HasSuffix(strings.ToLower(c.Name), "_id") || strings.EqualFold(c.Name, "id") {
					candidate = c.Name
					break
				}
			}
		}
	}
	if candidate == "" {
		return Fix{Textual: fmt.Sprintf("declare a primary key on %s (add a surrogate key if no natural key exists)", orUnknown(f.Table))}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf("ALTER TABLE %s ADD CONSTRAINT %s_pkey PRIMARY KEY (%s)", f.Table, f.Table, candidate)},
		Textual:       fmt.Sprintf("verify %s.%s is unique and non-null before adding the key", f.Table, candidate),
	}
}

func (e *Engine) fixNoForeignKey(f rules.Finding) Fix {
	// Recover the join edge behind the finding.
	for _, edge := range e.ctx.JoinEdges() {
		var owner, ownerCol, ref, refCol string
		switch {
		case strings.EqualFold(edge.RightTable, f.Table) && strings.EqualFold(edge.RightColumn, f.Column):
			owner, ownerCol, ref, refCol = edge.RightTable, edge.RightColumn, edge.LeftTable, edge.LeftColumn
		case strings.EqualFold(edge.LeftTable, f.Table) && strings.EqualFold(edge.LeftColumn, f.Column):
			owner, ownerCol, ref, refCol = edge.LeftTable, edge.LeftColumn, edge.RightTable, edge.RightColumn
		default:
			continue
		}
		// Point the FK at the side owning the key (pk/unique column).
		if rt := e.tableOf(ref); rt != nil && !isKeyColumn(rt, refCol) {
			if ot := e.tableOf(owner); ot != nil && isKeyColumn(ot, ownerCol) {
				owner, ownerCol, ref, refCol = ref, refCol, owner, ownerCol
			}
		}
		// Restore original identifier casing from the catalog (join
		// edges are normalized to lower case).
		if t := e.tableOf(owner); t != nil {
			owner = t.Name
			if c := t.Column(ownerCol); c != nil {
				ownerCol = c.Name
			}
		}
		if t := e.tableOf(ref); t != nil {
			ref = t.Name
			if c := t.Column(refCol); c != nil {
				refCol = c.Name
			}
		}
		return Fix{NewStatements: []string{fmt.Sprintf(
			"ALTER TABLE %s ADD CONSTRAINT fk_%s_%s FOREIGN KEY (%s) REFERENCES %s(%s)",
			owner, strings.ToLower(owner), strings.ToLower(ownerCol), ownerCol, ref, refCol)}}
	}
	// Naming-convention finding: <table>_id column.
	if f.Column != "" {
		base := strings.TrimSuffix(strings.ToLower(f.Column), "_id")
		for _, cand := range []string{base, base + "s", base + "es"} {
			if rt := e.tableOf(cand); rt != nil && len(rt.PrimaryKey) == 1 {
				return Fix{NewStatements: []string{fmt.Sprintf(
					"ALTER TABLE %s ADD CONSTRAINT fk_%s_%s FOREIGN KEY (%s) REFERENCES %s(%s)",
					f.Table, strings.ToLower(f.Table), strings.ToLower(f.Column), f.Column, rt.Name, rt.PrimaryKey[0])}}
			}
		}
	}
	return Fix{Textual: fmt.Sprintf("declare the foreign key relating %s.%s to its referenced table", orUnknown(f.Table), orUnknown(f.Column))}
}

func isKeyColumn(t *schema.Table, col string) bool {
	for _, pk := range t.PrimaryKey {
		if strings.EqualFold(pk, col) {
			return true
		}
	}
	if c := t.Column(col); c != nil && c.Unique {
		return true
	}
	return false
}

func (e *Engine) fixEnumeratedTypes(f rules.Finding) Fix {
	// The paper's Figure 5 refactoring: a lookup table plus an integer
	// foreign key column.
	table, col := f.Table, f.Column
	if table == "" || col == "" {
		return Fix{Textual: "replace the ENUM/CHECK-constrained column with a lookup table and a foreign key"}
	}
	lookup := col + "_lookup"
	var values []string
	if t := e.tableOf(table); t != nil {
		if c := t.Column(col); c != nil {
			if len(c.CheckInValues) > 0 {
				values = c.CheckInValues
			} else if c.Class == schema.ClassEnum {
				values = c.TypeParams
			}
		}
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE %s (%s_id INTEGER PRIMARY KEY, %s_name VARCHAR(30) NOT NULL UNIQUE)", lookup, col, col),
	}
	for i, v := range values {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s (%s_id, %s_name) VALUES (%d, '%s')",
			lookup, col, col, i+1, strings.ReplaceAll(v, "'", "''")))
	}
	stmts = append(stmts,
		fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s_id INTEGER REFERENCES %s(%s_id)", table, col, lookup, col),
	)
	return Fix{
		NewStatements: stmts,
		Textual: fmt.Sprintf("backfill %s.%s_id from %s, drop the CHECK/ENUM on %s.%s, then drop the old column; "+
			"renaming a value becomes a one-row UPDATE on %s", table, col, lookup, table, col, lookup),
	}
}

func (e *Engine) fixIndexOveruse(f rules.Finding) Fix {
	// Finding.Column carries the index name for overuse findings.
	if f.Column == "" {
		return Fix{Textual: "drop the redundant index"}
	}
	return Fix{NewStatements: []string{fmt.Sprintf("DROP INDEX %s", f.Column)}}
}

func (e *Engine) fixIndexUnderuse(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "create an index on the frequently filtered column"}
	}
	return Fix{NewStatements: []string{fmt.Sprintf(
		"CREATE INDEX idx_%s_%s ON %s (%s)",
		strings.ToLower(f.Table), strings.ToLower(f.Column), f.Table, f.Column)}}
}

func (e *Engine) fixRoundingErrors(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "store fractional quantities as NUMERIC/DECIMAL"}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s NUMERIC(18, 4)", f.Table, f.Column)},
		Textual:       "choose precision/scale to match the quantity (money commonly NUMERIC(18,4))",
	}
}

func (e *Engine) fixMissingTimezone(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "store timestamps with time zone"}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s TIMESTAMP WITH TIME ZONE", f.Table, f.Column)},
		Textual:       "backfill existing values with the zone they were recorded in before altering the type",
	}
}

func (e *Engine) fixIncorrectDataType(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "store the values in their natural type"}
	}
	target := "INTEGER"
	if tp := e.ctx.Profile(f.Table); tp != nil {
		if cp := tp.Column(f.Column); cp != nil {
			switch {
			case cp.FracOf(cp.DateLike) >= 0.9:
				target = "DATE"
			case cp.FracOf(cp.FloatLike) > 0:
				target = "NUMERIC(18, 4)"
			}
		}
	}
	return Fix{NewStatements: []string{fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s %s", f.Table, f.Column, target)}}
}

func (e *Engine) fixRedundantColumn(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "drop the redundant column"}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s", f.Table, f.Column)},
		Textual:       "confirm no consumer reads the column before dropping it",
	}
}

func (e *Engine) fixNoDomainConstraint(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "add a CHECK constraint for the column's domain"}
	}
	lo, hi := "<min>", "<max>"
	if tp := e.ctx.Profile(f.Table); tp != nil {
		if cp := tp.Column(f.Column); cp != nil && cp.NumericCount > 0 {
			lo = fmt.Sprintf("%g", cp.Min)
			hi = fmt.Sprintf("%g", cp.Max)
		}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf(
			"ALTER TABLE %s ADD CONSTRAINT %s_%s_domain CHECK (%s BETWEEN %s AND %s)",
			f.Table, strings.ToLower(f.Table), strings.ToLower(f.Column), f.Column, lo, hi)},
		Textual: "confirm the observed range is the intended domain before enforcing it",
	}
}

func (e *Engine) fixInformationDuplication(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "drop the derived column and compute it in queries (or a view)"}
	}
	return Fix{
		NewStatements: []string{fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s", f.Table, f.Column)},
		Textual:       fmt.Sprintf("compute %s at query time (expression or view) instead of storing it", f.Column),
	}
}

func (e *Engine) fixDenormalizedTable(f rules.Finding) Fix {
	if f.Table == "" || f.Column == "" {
		return Fix{Textual: "extract the functionally dependent columns into their own table"}
	}
	return Fix{Textual: fmt.Sprintf(
		"extract %s.%s (and the columns it depends on) into a separate table keyed by the determinant, and reference it by foreign key",
		f.Table, f.Column)}
}
