package fix

import (
	"fmt"
	"strings"
	"testing"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/core"
	"sqlcheck/internal/parser"
	"sqlcheck/internal/rules"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/sqlast"
	"sqlcheck/internal/storage"
)

// dataCtx builds a context with a live database so data-rule fixes can
// consult profiles.
func dataCtx(t *testing.T) (*Engine, *core.Result) {
	t.Helper()
	db := storage.NewDatabase("d")
	tab := db.CreateTable("events", []storage.ColumnDef{
		{Name: "event_id", Class: schema.ClassInteger},
		{Name: "amount_text", Class: schema.ClassText},
		{Name: "when_text", Class: schema.ClassText},
		{Name: "rating", Class: schema.ClassInteger},
		{Name: "locale", Class: schema.ClassChar},
	})
	if err := tab.SetPrimaryKey("event_id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		tab.MustInsert(
			storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("%d", i*3)),
			storage.Str(fmt.Sprintf("2020-01-%02d", i%28+1)),
			storage.Int(int64(i%5+1)),
			storage.Str("en-us"),
		)
	}
	res := core.DetectSQL("", db, core.DefaultOptions())
	return New(res.Context), res
}

func fixOf(t *testing.T, e *Engine, res *core.Result, ruleID, column string) Fix {
	t.Helper()
	for _, f := range res.Findings {
		if f.RuleID == ruleID && (column == "" || strings.EqualFold(f.Column, column)) {
			return e.Repair(f)
		}
	}
	t.Fatalf("no %s finding on column %q; got %v", ruleID, column, core.CountByRule(res.Findings))
	return Fix{}
}

func TestFixIncorrectDataTypeTargets(t *testing.T) {
	e, res := dataCtx(t)
	fx := fixOf(t, e, res, rules.IDIncorrectDataType, "amount_text")
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "ALTER COLUMN amount_text INTEGER") {
		t.Errorf("integer fix = %+v", fx)
	}
	fx = fixOf(t, e, res, rules.IDIncorrectDataType, "when_text")
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "ALTER COLUMN when_text DATE") {
		t.Errorf("date fix = %+v", fx)
	}
}

func TestFixNoDomainConstraintUsesObservedRange(t *testing.T) {
	e, res := dataCtx(t)
	fx := fixOf(t, e, res, rules.IDNoDomainConstraint, "rating")
	if len(fx.NewStatements) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	if !strings.Contains(fx.NewStatements[0], "CHECK (rating BETWEEN 1 AND 5)") {
		t.Errorf("fix = %q", fx.NewStatements[0])
	}
}

func TestFixInformationDuplicationAndDenormalized(t *testing.T) {
	db := storage.NewDatabase("d")
	tab := db.CreateTable("people", []storage.ColumnDef{
		{Name: "person_id", Class: schema.ClassInteger},
		{Name: "birth_year", Class: schema.ClassInteger},
		{Name: "age", Class: schema.ClassInteger},
		{Name: "city", Class: schema.ClassChar},
		{Name: "zip", Class: schema.ClassChar},
	})
	if err := tab.SetPrimaryKey("person_id"); err != nil {
		t.Fatal(err)
	}
	cities := []string{"Rome", "Oslo", "Lima"}
	for i := 0; i < 90; i++ {
		year := 1950 + i%40
		tab.MustInsert(storage.Int(int64(i)), storage.Int(int64(year)), storage.Int(int64(2020-year)),
			storage.Str(cities[i%3]), storage.Str(fmt.Sprintf("Z%d", i%3)))
	}
	res := core.DetectSQL("", db, core.DefaultOptions())
	e := New(res.Context)
	fx := fixOf(t, e, res, rules.IDInformationDuplication, "")
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "DROP COLUMN") {
		t.Errorf("info-dup fix = %+v", fx)
	}
	fx = fixOf(t, e, res, rules.IDDenormalizedTable, "")
	if fx.Textual == "" || !strings.Contains(fx.Textual, "extract") {
		t.Errorf("denorm fix = %+v", fx)
	}
}

func TestSingularize(t *testing.T) {
	cases := map[string]string{
		"User_IDs":  "User_ID",
		"tags":      "tag",
		"addresses": "address", // "ses" suffix
		"status":    "statu",   // naive but deterministic
		"x":         "x_value",
	}
	for in, want := range cases {
		if got := singularize(in); got != want {
			t.Errorf("singularize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGuessListColumnFromRegexpPredicate(t *testing.T) {
	e, findings := run(t, `
		CREATE TABLE t (t_id INT PRIMARY KEY, member_ids TEXT);
		SELECT * FROM t WHERE member_ids REGEXP '[[:<:]]M7[[:>:]]';
	`)
	for _, f := range findings {
		if f.RuleID == rules.IDMultiValuedAttribute && f.QueryIndex >= 0 {
			fx := e.Repair(f)
			joined := strings.Join(fx.NewStatements, "\n")
			if !strings.Contains(joined, "member_id") {
				t.Errorf("column not recovered: %v", fx.NewStatements)
			}
			return
		}
	}
	t.Fatal("MVA finding missing")
}

func TestFixNoForeignKeyNamingConvention(t *testing.T) {
	// No join in the workload: the finding comes from the naming
	// convention, and the fix resolves the referenced table's pk.
	fx := fixFor(t, `
		CREATE TABLE tenants (tenant_id INT PRIMARY KEY, zone VARCHAR(10));
		CREATE TABLE surveys (survey_id INT PRIMARY KEY, tenant_id INT);
	`, rules.IDNoForeignKey)
	if len(fx.NewStatements) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	if !strings.Contains(fx.NewStatements[0], "REFERENCES tenants(tenant_id)") {
		t.Errorf("fix = %q", fx.NewStatements[0])
	}
}

func TestFixNoForeignKeyUnresolvableIsTextual(t *testing.T) {
	ctx := appctx.BuildFromSQL("CREATE TABLE lonely (x_id INT)", nil, appctx.DefaultConfig())
	fx := New(ctx).Repair(rules.Finding{RuleID: rules.IDNoForeignKey, Table: "lonely", Column: "ghost_id"})
	if fx.Automated() || fx.Textual == "" {
		t.Errorf("fix = %+v", fx)
	}
}

func TestMapExprRebuildsAllShapes(t *testing.T) {
	// qualifyExpr exercises mapExpr over every node type.
	e := parserParse(t, "SELECT a FROM t WHERE f(x, y) IN (1, 2) AND NOT (u || v) = CASE WHEN c THEN d ELSE e END")
	sel := e
	q := qualifyExpr(sel.Where, "t")
	// Every bare column ref must now be qualified.
	bare := 0
	walkRefs(q, func(table, col string) {
		if table == "" && col != "*" {
			bare++
		}
	})
	if bare != 0 {
		t.Errorf("%d bare refs remain", bare)
	}
}

func TestQualifyExprLeavesQualified(t *testing.T) {
	sel := parserParse(t, "SELECT 1 FROM t WHERE o.x = 1 AND y = 2")
	q := qualifyExpr(sel.Where, "t")
	var tables []string
	walkRefs(q, func(table, col string) { tables = append(tables, table) })
	want := map[string]bool{"o": true, "t": true}
	for _, tb := range tables {
		if !want[tb] {
			t.Errorf("unexpected qualifier %q", tb)
		}
	}
}

// parserParse returns the parsed SELECT for expression-level tests.
func parserParse(t *testing.T, sql string) *sqlast.SelectStatement {
	t.Helper()
	st := parser.Parse(sql)
	sel, ok := st.(*sqlast.SelectStatement)
	if !ok {
		t.Fatalf("not a select: %T", st)
	}
	return sel
}

func walkRefs(e sqlast.Expr, fn func(table, col string)) {
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok {
			fn(cr.Table, cr.Column)
		}
		return true
	})
}
