package fix

import (
	"strings"
	"testing"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/core"
	"sqlcheck/internal/rules"
)

// run detects APs in sql and returns the engine plus findings.
func run(t *testing.T, sql string) (*Engine, []rules.Finding) {
	t.Helper()
	res := core.DetectSQL(sql, nil, core.DefaultOptions())
	return New(res.Context), res.Findings
}

// fixFor returns the fix for the first finding of the rule.
func fixFor(t *testing.T, sql, ruleID string) Fix {
	t.Helper()
	e, findings := run(t, sql)
	for _, f := range findings {
		if f.RuleID == ruleID {
			return e.Repair(f)
		}
	}
	t.Fatalf("no finding for %s in %q", ruleID, sql)
	return Fix{}
}

func TestFixImplicitColumns(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE Tenant (Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(10), Active BOOLEAN, User_IDs TEXT);
		INSERT INTO Tenant VALUES ('T1', 'Z1', TRUE, 'U1,U2');
	`, rules.IDImplicitColumns)
	if len(fx.Rewrites) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	want := "INSERT INTO Tenant (Tenant_ID, Zone_ID, Active, User_IDs) VALUES ('T1', 'Z1', TRUE, 'U1,U2')"
	if fx.Rewrites[0].Fixed != want {
		t.Errorf("fixed = %q, want %q", fx.Rewrites[0].Fixed, want)
	}
}

func TestFixImplicitColumnsWithoutSchemaIsTextual(t *testing.T) {
	fx := fixFor(t, "INSERT INTO mystery VALUES (1, 2)", rules.IDImplicitColumns)
	if fx.Automated() || fx.Textual == "" {
		t.Errorf("fix = %+v, want textual fallback", fx)
	}
}

func TestFixImplicitColumnsArityMismatchIsTextual(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE t (a INT PRIMARY KEY, b INT, c INT);
		INSERT INTO t VALUES (1, 2);
	`, rules.IDImplicitColumns)
	if len(fx.Rewrites) != 0 || !strings.Contains(fx.Textual, "supplies 2 values") {
		t.Errorf("fix = %+v", fx)
	}
}

func TestFixColumnWildcard(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);
		SELECT * FROM users WHERE id = 1;
	`, rules.IDColumnWildcard)
	if len(fx.Rewrites) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	if !strings.Contains(fx.Rewrites[0].Fixed, "SELECT id, name, email FROM users") {
		t.Errorf("fixed = %q", fx.Rewrites[0].Fixed)
	}
}

func TestFixColumnWildcardQualifiedInJoin(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE a (x INT PRIMARY KEY);
		CREATE TABLE b (y INT PRIMARY KEY, a_x INT);
		SELECT a.* FROM a JOIN b ON a.x = b.a_x;
	`, rules.IDColumnWildcard)
	if len(fx.Rewrites) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	if !strings.Contains(fx.Rewrites[0].Fixed, "SELECT a.x FROM") {
		t.Errorf("fixed = %q", fx.Rewrites[0].Fixed)
	}
}

func TestFixConcatenateNulls(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE u (first VARCHAR(10) NOT NULL, middle VARCHAR(10));
		SELECT first || middle FROM u;
	`, rules.IDConcatenateNulls)
	if len(fx.Rewrites) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	got := fx.Rewrites[0].Fixed
	if !strings.Contains(got, "COALESCE(middle, '')") {
		t.Errorf("fixed = %q", got)
	}
	if strings.Contains(got, "COALESCE(first") {
		t.Errorf("NOT NULL column wrapped: %q", got)
	}
}

func TestFixMVATask1(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(10), User_IDs TEXT);
		SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';
	`, rules.IDMultiValuedAttribute)
	if len(fx.NewStatements) < 2 {
		t.Fatalf("new statements = %v", fx.NewStatements)
	}
	if !strings.Contains(fx.NewStatements[0], "CREATE TABLE Tenants_User_ID_map") {
		t.Errorf("intersection table = %q", fx.NewStatements[0])
	}
	if !strings.Contains(fx.NewStatements[0], "PRIMARY KEY (Tenant_ID, User_ID)") {
		t.Errorf("composite key missing: %q", fx.NewStatements[0])
	}
	if !strings.Contains(fx.NewStatements[1], "DROP COLUMN User_IDs") {
		t.Errorf("drop column = %q", fx.NewStatements[1])
	}
	if len(fx.Rewrites) != 1 {
		t.Fatalf("rewrites = %+v", fx.Rewrites)
	}
	got := fx.Rewrites[0].Fixed
	if !strings.Contains(got, "JOIN Tenants AS t ON m.Tenant_ID = t.Tenant_ID") ||
		!strings.Contains(got, "m.User_ID = 'U1'") {
		t.Errorf("rewritten query = %q", got)
	}
}

func TestFixMVATask2JoinRewrite(t *testing.T) {
	e, findings := run(t, `
		CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, User_IDs TEXT);
		CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name TEXT);
		SELECT u.Name FROM Tenants t JOIN Users u ON t.User_IDs LIKE '%' || u.User_ID || '%' WHERE t.Tenant_ID = 'T1';
	`)
	var fx Fix
	found := false
	for _, f := range findings {
		if f.RuleID == rules.IDMultiValuedAttribute && f.QueryIndex >= 0 {
			fx = e.Repair(f)
			if len(fx.Rewrites) > 0 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatalf("no automated join rewrite produced")
	}
	got := fx.Rewrites[0].Fixed
	if !strings.Contains(got, "FROM Tenants_User_ID_map AS m") {
		t.Errorf("rewritten = %q", got)
	}
	if !strings.Contains(got, "m.User_ID = u.User_ID") {
		t.Errorf("equi-join missing: %q", got)
	}
}

func TestFixNoForeignKeyFromJoinEdge(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY);
		CREATE TABLE Questionnaire (Q_ID INTEGER PRIMARY KEY, Tenant_ID INTEGER);
		SELECT * FROM Questionnaire q JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID;
	`, rules.IDNoForeignKey)
	if len(fx.NewStatements) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	got := fx.NewStatements[0]
	if !strings.Contains(got, "ALTER TABLE Questionnaire ADD CONSTRAINT") ||
		!strings.Contains(got, "FOREIGN KEY (Tenant_ID) REFERENCES Tenant(Tenant_ID)") {
		t.Errorf("fk fix = %q", got)
	}
}

func TestFixNoPrimaryKey(t *testing.T) {
	fx := fixFor(t, "CREATE TABLE t (user_id INT, v TEXT)", rules.IDNoPrimaryKey)
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "ADD CONSTRAINT t_pkey PRIMARY KEY (user_id)") {
		t.Errorf("fix = %+v", fx)
	}
	// No candidate: textual.
	fx = fixFor(t, "CREATE TABLE t2 (v TEXT, w TEXT)", rules.IDNoPrimaryKey)
	if fx.Automated() {
		t.Errorf("fix = %+v, want textual", fx)
	}
}

func TestFixEnumeratedTypes(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE User2 (User_ID INT PRIMARY KEY, Role VARCHAR(5) CHECK (Role IN ('R1','R2','R3')));
	`, rules.IDEnumeratedTypes)
	if len(fx.NewStatements) < 4 {
		t.Fatalf("statements = %v", fx.NewStatements)
	}
	if !strings.Contains(fx.NewStatements[0], "CREATE TABLE Role_lookup") {
		t.Errorf("lookup table = %q", fx.NewStatements[0])
	}
	if !strings.Contains(fx.NewStatements[1], "VALUES (1, 'R1')") {
		t.Errorf("seed = %q", fx.NewStatements[1])
	}
	last := fx.NewStatements[len(fx.NewStatements)-1]
	if !strings.Contains(last, "ADD COLUMN Role_id INTEGER REFERENCES Role_lookup(Role_id)") {
		t.Errorf("fk column = %q", last)
	}
}

func TestFixIndexOveruseAndUnderuse(t *testing.T) {
	fx := fixFor(t, `
		CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT);
		CREATE INDEX big ON t (a, b);
		CREATE INDEX little ON t (a);
		SELECT id FROM t WHERE a = 1;
	`, rules.IDIndexOveruse)
	if len(fx.NewStatements) != 1 || fx.NewStatements[0] != "DROP INDEX little" {
		t.Errorf("fix = %+v", fx)
	}
	fx = fixFor(t, `
		CREATE TABLE t (id INT PRIMARY KEY, zone VARCHAR(5));
		SELECT id FROM t WHERE zone = 'a';
		SELECT id FROM t WHERE zone = 'b';
	`, rules.IDIndexUnderuse)
	if len(fx.NewStatements) != 1 || fx.NewStatements[0] != "CREATE INDEX idx_t_zone ON t (zone)" {
		t.Errorf("fix = %+v", fx)
	}
}

func TestFixDistinctJoinToExists(t *testing.T) {
	fx := fixFor(t, `
		SELECT DISTINCT a.x FROM a JOIN b ON a.id = b.aid;
	`, rules.IDDistinctJoin)
	if len(fx.Rewrites) != 1 {
		t.Fatalf("fix = %+v", fx)
	}
	got := fx.Rewrites[0].Fixed
	if !strings.Contains(got, "WHERE EXISTS((SELECT 1 FROM b WHERE a.id = b.aid))") &&
		!strings.Contains(got, "WHERE EXISTS (SELECT 1 FROM b WHERE a.id = b.aid)") {
		t.Errorf("rewritten = %q", got)
	}
	if strings.Contains(got, "DISTINCT") || strings.Contains(got, "JOIN") {
		t.Errorf("join/distinct not removed: %q", got)
	}
}

func TestFixDistinctJoinAmbiguousIsTextual(t *testing.T) {
	fx := fixFor(t, "SELECT DISTINCT * FROM a JOIN b ON a.id = b.aid", rules.IDDistinctJoin)
	if fx.Automated() {
		t.Errorf("ambiguous select star must be textual: %+v", fx)
	}
}

func TestFixRoundingErrors(t *testing.T) {
	fx := fixFor(t, "CREATE TABLE o (id INT PRIMARY KEY, total FLOAT)", rules.IDRoundingErrors)
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "ALTER COLUMN total NUMERIC") {
		t.Errorf("fix = %+v", fx)
	}
}

func TestTextualOnlyRules(t *testing.T) {
	cases := map[string]string{
		rules.IDGenericPrimaryKey: "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
		rules.IDAdjacencyList:     "CREATE TABLE emp (id INT PRIMARY KEY, mgr INT REFERENCES emp(id))",
		rules.IDReadablePassword:  "CREATE TABLE acc (id INT PRIMARY KEY, password VARCHAR(20))",
		rules.IDOrderByRand:       "SELECT * FROM t ORDER BY RAND() LIMIT 1",
		rules.IDPatternMatching:   "SELECT * FROM t WHERE name LIKE '%x%'",
	}
	for ruleID, sql := range cases {
		fx := fixFor(t, sql, ruleID)
		if fx.Textual == "" {
			t.Errorf("%s: no textual guidance", ruleID)
		}
	}
}

func TestImpactedQueries(t *testing.T) {
	e, findings := run(t, `
		CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, User_IDs TEXT);
		SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';
		SELECT User_IDs FROM Tenants WHERE Tenant_ID = 'T1';
		SELECT Tenant_ID FROM Tenants WHERE Tenant_ID = 'T2';
	`)
	for _, f := range findings {
		if f.RuleID == rules.IDMultiValuedAttribute && f.QueryIndex == 1 {
			fx := e.Repair(f)
			// Query 2 touches User_IDs and is impacted; query 3 is not.
			if len(fx.Impacted) == 0 {
				t.Fatalf("no impacted queries: %+v", fx)
			}
			for _, qi := range fx.Impacted {
				if qi == 3 {
					t.Errorf("query 3 wrongly impacted")
				}
			}
			return
		}
	}
	t.Fatal("MVA finding on query 1 not found")
}

func TestRepairAllCoversEveryFinding(t *testing.T) {
	e, findings := run(t, `
		CREATE TABLE t (id INT PRIMARY KEY, total FLOAT, password VARCHAR(10));
		SELECT * FROM t ORDER BY RAND();
		INSERT INTO t VALUES (1, 2.5, 'pw');
	`)
	fixes := e.RepairAll(findings)
	if len(fixes) != len(findings) {
		t.Fatalf("fixes = %d, findings = %d", len(fixes), len(findings))
	}
	for _, fx := range fixes {
		if !fx.Automated() && fx.Textual == "" {
			t.Errorf("finding %s has neither rewrite nor textual fix", fx.Finding.RuleID)
		}
	}
}

func TestFixDataRulesProduceStatements(t *testing.T) {
	ctx := appctx.BuildFromSQL("CREATE TABLE e (id INT PRIMARY KEY, at TIMESTAMP)", nil, appctx.DefaultConfig())
	e := New(ctx)
	fx := e.Repair(rules.Finding{RuleID: rules.IDMissingTimezone, Table: "e", Column: "at", QueryIndex: -1})
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "TIMESTAMP WITH TIME ZONE") {
		t.Errorf("fix = %+v", fx)
	}
	fx = e.Repair(rules.Finding{RuleID: rules.IDRedundantColumn, Table: "e", Column: "at", QueryIndex: -1})
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "DROP COLUMN at") {
		t.Errorf("fix = %+v", fx)
	}
	fx = e.Repair(rules.Finding{RuleID: rules.IDNoDomainConstraint, Table: "e", Column: "at", QueryIndex: -1})
	if len(fx.NewStatements) != 1 || !strings.Contains(fx.NewStatements[0], "ADD CONSTRAINT") {
		t.Errorf("fix = %+v", fx)
	}
}

func TestUnknownRuleFallsBack(t *testing.T) {
	ctx := appctx.BuildFromSQL("", nil, appctx.DefaultConfig())
	fx := New(ctx).Repair(rules.Finding{RuleID: "future-rule", Message: "something"})
	if fx.Textual == "" {
		t.Error("unknown rule must produce textual guidance")
	}
}

func TestPatternToken(t *testing.T) {
	cases := map[string]string{
		"%U1%":              "U1",
		"[[:<:]]U1[[:>:]]":  "U1",
		"%bob@example.com%": "bob@example.com",
		"%a%b%":             "", // multiple tokens: not extractable
		"prefix%":           "prefix",
	}
	for in, want := range cases {
		if got := patternToken(in); got != want {
			t.Errorf("patternToken(%q) = %q, want %q", in, got, want)
		}
	}
}
