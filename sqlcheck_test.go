package sqlcheck

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCheckSQLBasic(t *testing.T) {
	report, err := New().CheckSQL(`
		CREATE TABLE orders (id INT PRIMARY KEY, total FLOAT);
		SELECT * FROM orders ORDER BY RAND() LIMIT 5;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if report.Statements != 2 {
		t.Errorf("statements = %d", report.Statements)
	}
	for _, want := range []string{"rounding-errors", "order-by-rand", "column-wildcard", "generic-primary-key"} {
		if !report.Has(want) {
			t.Errorf("missing finding %s; got %v", want, ruleIDs(report))
		}
	}
	// Findings are sorted by score, descending.
	for i := 1; i < len(report.Findings); i++ {
		if report.Findings[i].Score > report.Findings[i-1].Score+1e-9 {
			t.Fatal("findings not sorted by score")
		}
	}
	// Every finding carries a fix of some kind.
	for _, f := range report.Findings {
		if !f.Fix.Automated() && f.Fix.Guidance == "" {
			t.Errorf("finding %s has no fix", f.Rule)
		}
	}
}

func ruleIDs(r *Report) []string {
	var out []string
	for _, f := range r.Findings {
		out = append(out, f.Rule)
	}
	return out
}

func TestCheckSQLEmpty(t *testing.T) {
	if _, err := New().CheckSQL("   "); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCheckApplicationWithData(t *testing.T) {
	db := NewDatabase("app")
	db.MustExec("CREATE TABLE tenants (tenant_id INT PRIMARY KEY, user_ids TEXT)")
	for i := 0; i < 60; i++ {
		db.MustExec("INSERT INTO tenants (tenant_id, user_ids) VALUES (" +
			itoa(i) + ", 'U1,U2,U3')")
	}
	report, err := New().CheckApplication("SELECT tenant_id FROM tenants", db)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Has("multi-valued-attribute") {
		t.Errorf("data rule missed; got %v", ruleIDs(report))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestModesDiffer(t *testing.T) {
	sql := `
		CREATE TABLE a (a_id INT PRIMARY KEY);
		CREATE TABLE b (b_id INT PRIMARY KEY, a_id INT);
		SELECT * FROM b JOIN a ON a.a_id = b.a_id;
	`
	inter, err := New().CheckSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	intra, err := New(Options{Mode: IntraQuery}).CheckSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !inter.Has("no-foreign-key") {
		t.Error("inter mode missed no-foreign-key")
	}
	if intra.Has("no-foreign-key") {
		t.Error("intra mode detected an inter-query AP")
	}
}

func TestWeightProfilesChangeOrder(t *testing.T) {
	// A live database confirms both findings at equal confidence so
	// the ordering reflects the weight profiles alone (paper
	// Example 6 compares impact vectors, not detector confidence).
	mkdb := func() *Database {
		db := NewDatabase("w")
		db.MustExec("CREATE TABLE t (t_id INT PRIMARY KEY, zone VARCHAR(10), role VARCHAR(5) CHECK (role IN ('a','b')))")
		for i := 0; i < 100; i++ {
			role := "a"
			if i%2 == 0 {
				role = "b"
			}
			db.MustExec("INSERT INTO t (t_id, zone, role) VALUES (" + itoa(i) + ", 'z" + itoa(i) + "', '" + role + "')")
		}
		return db
	}
	sql := `
		SELECT t_id FROM t WHERE zone = 'z1';
		SELECT t_id FROM t WHERE zone = 'z2';
	`
	read, _ := New(Options{Weights: ReadHeavy}).CheckApplication(sql, mkdb())
	hybrid, _ := New(Options{Weights: Hybrid}).CheckApplication(sql, mkdb())
	pos := func(r *Report, rule string) int {
		for i, f := range r.Findings {
			if f.Rule == rule {
				return i
			}
		}
		return -1
	}
	// ReadHeavy (C1) puts index-underuse ahead of enumerated-types;
	// Hybrid (C2) reverses them (paper Example 6).
	if !(pos(read, "index-underuse") < pos(read, "enumerated-types")) {
		t.Errorf("C1 order wrong: %v", ruleIDs(read))
	}
	if !(pos(hybrid, "enumerated-types") < pos(hybrid, "index-underuse")) {
		t.Errorf("C2 order wrong: %v", ruleIDs(hybrid))
	}
}

func TestRuleFilterOption(t *testing.T) {
	report, err := New(Options{Rules: []string{"column-wildcard"}}).CheckSQL(
		"SELECT * FROM t ORDER BY RAND()")
	if err != nil {
		t.Fatal(err)
	}
	if !report.Has("column-wildcard") || report.Has("order-by-rand") {
		t.Errorf("filter not applied: %v", ruleIDs(report))
	}
}

func TestQueryRanking(t *testing.T) {
	report, err := New().CheckSQL(`
		SELECT a FROM t WHERE x = 1;
		SELECT * FROM t ORDER BY RAND();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Queries) == 0 {
		t.Fatal("no query ranking")
	}
	if report.Queries[0].Query != 1 {
		t.Errorf("worst query = %d, want 1", report.Queries[0].Query)
	}
	if report.Queries[0].SQL == "" {
		t.Error("query SQL missing")
	}
}

func TestFixRewriteSurfaced(t *testing.T) {
	report, err := New().CheckSQL(`
		CREATE TABLE t (a INT PRIMARY KEY, b TEXT);
		INSERT INTO t VALUES (1, 'x');
	`)
	if err != nil {
		t.Fatal(err)
	}
	fs := report.ByRule("implicit-columns")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", ruleIDs(report))
	}
	if len(fs[0].Fix.Rewrites) != 1 || !strings.Contains(fs[0].Fix.Rewrites[0].Fixed, "(a, b)") {
		t.Errorf("fix = %+v", fs[0].Fix)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	report, err := New().CheckSQL("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != len(report.Findings) {
		t.Error("JSON round trip lost findings")
	}
}

func TestRulesCatalog(t *testing.T) {
	catalog := Rules()
	// 27 built-ins; custom-rule tests in this package may have added
	// more (the registry is process-global).
	if len(catalog) < 27 {
		t.Fatalf("catalog = %d rules", len(catalog))
	}
	byID := map[string]RuleInfo{}
	for _, r := range catalog {
		byID[r.ID] = r
		if r.ID == "" || r.Name == "" || r.Category == "" || r.Description == "" {
			t.Errorf("incomplete rule info: %+v", r)
		}
		if len(r.Scopes) == 0 {
			t.Errorf("%s: no scopes in catalog metadata", r.ID)
		}
	}
	// Metadata spot checks: the catalog must expose what the planner
	// derives dispatch and phases from.
	cw := byID["column-wildcard"]
	if len(cw.Scopes) != 1 || cw.Scopes[0] != "query" || len(cw.Needs) != 0 {
		t.Errorf("column-wildcard metadata: %+v", cw)
	}
	if len(cw.Kinds) != 1 || cw.Kinds[0] != "SELECT" {
		t.Errorf("column-wildcard kinds: %v", cw.Kinds)
	}
	if !cw.Impact.Performance || !cw.Impact.Accuracy || cw.Impact.Maintainability {
		t.Errorf("column-wildcard impact: %+v", cw.Impact)
	}
	mva := byID["multi-valued-attribute"]
	if len(mva.Needs) != 2 { // schema + profile
		t.Errorf("multi-valued-attribute needs: %v", mva.Needs)
	}
	if len(mva.Scopes) != 2 { // query + data
		t.Errorf("multi-valued-attribute scopes: %v", mva.Scopes)
	}
	tz := byID["missing-timezone"]
	if len(tz.Scopes) != 1 || tz.Scopes[0] != "data" || len(tz.Kinds) != 0 {
		t.Errorf("missing-timezone metadata: %+v", tz)
	}
}

// TestWorkloadRulesPlansPhases exercises the public demand-planning
// path: a query-rule-only workload against a registered database
// triggers neither snapshotting nor profiling, and rule subsets are
// admission plans, not findings filters — unknown IDs fail the batch.
func TestWorkloadRulesPlansPhases(t *testing.T) {
	checker := New()
	db := NewDatabase("plans")
	db.MustExec("CREATE TABLE tenants (id INT PRIMARY KEY, user_ids TEXT)")
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO tenants VALUES (%d, 'U%d,U%d')", i, i, i+1))
	}
	if err := checker.RegisterDatabase("plans", db); err != nil {
		t.Fatal(err)
	}
	reports, err := checker.CheckWorkloads(context.Background(), []Workload{
		{SQL: "SELECT * FROM tenants ORDER BY RAND()", DBName: "plans",
			Rules: []string{"column-wildcard", "order-by-rand"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Has("column-wildcard") || !reports[0].Has("order-by-rand") {
		t.Errorf("subset findings: %v", ruleIDs(reports[0]))
	}
	if reports[0].Has("multi-valued-attribute") {
		t.Error("disabled rule fired")
	}
	m := checker.Metrics()
	if m.Snapshots != 0 || m.Skips.Snapshot != 1 || m.Skips.Profile != 1 {
		t.Errorf("query-only workload: snapshots=%d skips=%+v", m.Snapshots, m.Skips)
	}

	// Full-catalog workload against the same database: snapshot and
	// profiling run, and the data-confirmed MVA appears.
	reports, err = checker.CheckWorkloads(context.Background(), []Workload{
		{SQL: "SELECT * FROM tenants WHERE user_ids LIKE '%U7%'", DBName: "plans"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Has("multi-valued-attribute") {
		t.Errorf("full run missed MVA: %v", ruleIDs(reports[0]))
	}
	m = checker.Metrics()
	if m.Snapshots != 1 {
		t.Errorf("full run snapshots = %d, want 1", m.Snapshots)
	}

	// Unknown rule IDs fail the batch with ErrUnknownRule.
	_, err = checker.CheckWorkloads(context.Background(), []Workload{
		{SQL: "SELECT 1", Rules: []string{"not-a-rule"}},
	})
	if !errors.Is(err, ErrUnknownRule) {
		t.Errorf("unknown workload rule: err = %v", err)
	}
	if _, err := New(Options{Rules: []string{"nope"}}).CheckSQL("SELECT 1"); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("unknown Options.Rules: err = %v", err)
	}
}

func TestDatabaseFacade(t *testing.T) {
	db := NewDatabase("demo")
	db.MustExec("CREATE TABLE users (user_id INT PRIMARY KEY, name TEXT NOT NULL)")
	if got := db.Tables(); len(got) != 1 || got[0] != "users" {
		t.Fatalf("tables = %v", got)
	}
	res := db.MustExec("INSERT INTO users (user_id, name) VALUES (1, 'Ada')")
	if res.Affected != 1 {
		t.Error("insert affected")
	}
	res = db.MustExec("SELECT name FROM users WHERE user_id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0] != "Ada" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if db.RowCount("users") != 1 || db.RowCount("ghost") != -1 {
		t.Error("RowCount")
	}
	if _, err := db.Exec("INSERT INTO users (user_id) VALUES (2)"); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	if err := db.ExecScript("UPDATE users SET name = 'Grace' WHERE user_id = 1; DELETE FROM users WHERE user_id = 1"); err != nil {
		t.Fatal(err)
	}
	if db.RowCount("users") != 0 {
		t.Error("script did not apply")
	}
	if err := db.ExecScript("SELECT * FROM missing"); err == nil {
		t.Error("script error swallowed")
	}
	// NULL rendering.
	db.MustExec("CREATE TABLE n (a INT, b TEXT)")
	db.MustExec("INSERT INTO n (a) VALUES (1)")
	res = db.MustExec("SELECT b FROM n")
	if res.Rows[0][0] != "NULL" {
		t.Errorf("null rendering = %q", res.Rows[0][0])
	}
}

func TestEndToEndRepairLoop(t *testing.T) {
	// Detect the enum AP, apply its suggested fix statements to a live
	// database, and confirm the lookup table exists afterward — the
	// full detect → fix → apply loop.
	db := NewDatabase("loop")
	db.MustExec("CREATE TABLE staff (staff_id INT PRIMARY KEY, role VARCHAR(5) CHECK (role IN ('R1','R2')))")
	report, err := New().CheckApplication(
		"CREATE TABLE staff (staff_id INT PRIMARY KEY, role VARCHAR(5) CHECK (role IN ('R1','R2')))", nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := report.ByRule("enumerated-types")
	if len(fs) == 0 {
		t.Fatal("enum AP not found")
	}
	for _, stmt := range fs[0].Fix.NewStatements {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("applying fix %q: %v", stmt, err)
		}
	}
	found := false
	for _, name := range db.Tables() {
		if strings.Contains(strings.ToLower(name), "lookup") {
			found = true
		}
	}
	if !found {
		t.Errorf("lookup table not created; tables = %v", db.Tables())
	}
}

func TestRegisterCustomRule(t *testing.T) {
	err := RegisterRule(CustomRule{
		ID:          "hinted-index",
		Name:        "Optimizer Hint",
		Description: "optimizer hints pin plans and rot as data changes",
		Pattern:     `/\*\+.*\*/|USE\s+INDEX`,
		Guidance:    "remove the hint; fix the underlying statistics or index instead",
		Impact:      Impact{ReadPerf: 1.2, Maint: 2},
	})
	// The registry is process-global: tolerate re-registration when the
	// test runs more than once in a process (-count=2).
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	report, err := New().CheckSQL("SELECT * FROM t USE INDEX (ix_a) WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	fs := report.ByRule("hinted-index")
	if len(fs) != 1 {
		t.Fatalf("custom rule findings = %v", ruleIDs(report))
	}
	if fs[0].Fix.Guidance != "remove the hint; fix the underlying statistics or index instead" {
		t.Errorf("guidance = %q", fs[0].Fix.Guidance)
	}
	if fs[0].Score <= 0 {
		t.Error("custom impact not scored")
	}
	// Clean statements are not flagged.
	report, _ = New().CheckSQL("SELECT a FROM t WHERE a = 1")
	if report.Has("hinted-index") {
		t.Error("custom rule false positive")
	}
}

func TestQueryOnlySubsetTradesFixSpecificity(t *testing.T) {
	// Demand planning is observable in fixes, not just phase counters:
	// a subset that needs nothing from the database analyzes
	// database-free (DESIGN §2d), so fixes that expand columns from a
	// registered schema degrade from a concrete rewrite to guidance.
	// This pins that trade-off as deliberate — if phase planning ever
	// models fix-stage schema needs, update DESIGN §2d, Options.Rules,
	// and Workload.Rules alongside this test.
	db := NewDatabase("fixdb")
	if _, err := db.Exec("CREATE TABLE t (a INT, b INT, c INT)"); err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.RegisterDatabase("fixdb", db); err != nil {
		t.Fatal(err)
	}
	const sql = "INSERT INTO t VALUES (1, 2, 3)"
	ctx := context.Background()

	full, err := c.CheckWorkloads(ctx, []Workload{{SQL: sql, DBName: "fixdb"}})
	if err != nil {
		t.Fatal(err)
	}
	fs := full[0].ByRule("implicit-columns")
	if len(fs) != 1 || len(fs[0].Fix.Rewrites) == 0 {
		t.Fatalf("full catalog: want a schema-expanded rewrite, got %+v", fs)
	}
	if got := fs[0].Fix.Rewrites[0].Fixed; !strings.Contains(got, "(a, b, c)") {
		t.Errorf("full-catalog rewrite = %q, want explicit column list", got)
	}

	sub, err := c.CheckWorkloads(ctx, []Workload{
		{SQL: sql, DBName: "fixdb", Rules: []string{"implicit-columns"}}})
	if err != nil {
		t.Fatal(err)
	}
	fs = sub[0].ByRule("implicit-columns")
	if len(fs) != 1 {
		t.Fatalf("subset findings = %+v", fs)
	}
	if len(fs[0].Fix.Rewrites) != 0 {
		t.Errorf("need-free subset produced a schema rewrite %v — did phase planning start reflecting schema for fixes? update the docs pinned above", fs[0].Fix.Rewrites)
	}
	if fs[0].Fix.Guidance == "" {
		t.Error("need-free subset lost the guidance fallback")
	}
}

func TestLateRegisteredRuleRunsOnExistingChecker(t *testing.T) {
	// RegisterRule promises that Checkers run subsequently-registered
	// rules, and the engine paths must honor it even though the rule
	// filter compiles at engine construction: an unfiltered engine
	// tracks the live catalog, not the set it was built with.
	c := New()
	if _, err := c.CheckSQL("SELECT 1"); err != nil {
		t.Fatal(err) // forces engine construction before registration
	}
	err := RegisterRule(CustomRule{
		ID:          "late-probe",
		Name:        "Late Probe",
		Description: "registered after the checker's engine was built",
		Pattern:     `ZZ_LATE_PROBE`,
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	report, err := c.CheckSQL("SELECT zz_late_probe FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !report.Has("late-probe") {
		t.Errorf("rule registered after engine construction never ran; findings = %v", ruleIDs(report))
	}
}

func TestRegisterRuleValidation(t *testing.T) {
	if err := RegisterRule(CustomRule{Name: "x", Pattern: "a"}); err == nil {
		t.Error("missing ID accepted")
	}
	if err := RegisterRule(CustomRule{ID: "column-wildcard", Name: "dup", Pattern: "a"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := RegisterRule(CustomRule{ID: "no-matcher", Name: "x"}); err == nil {
		t.Error("missing matcher accepted")
	}
	if err := RegisterRule(CustomRule{ID: "bad-re", Name: "x", Pattern: "["}); err == nil {
		t.Error("bad regex accepted")
	}
	if err := RegisterRule(CustomRule{ID: "bad-cat", Name: "x", Pattern: "a", Category: "cosmic"}); err == nil {
		t.Error("bad category accepted")
	}
}

func TestCustomRuleWithMatchFunc(t *testing.T) {
	err := RegisterRule(CustomRule{
		ID:       "very-long-statement",
		Name:     "Very Long Statement",
		Category: "query",
		Match:    func(sql string) bool { return len(sql) > 500 },
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	long := "SELECT " + strings.Repeat("a, ", 200) + "b FROM t"
	report, _ := New().CheckSQL(long)
	if !report.Has("very-long-statement") {
		t.Error("match func not applied")
	}
}

func TestCheckBatch(t *testing.T) {
	workloads := []string{
		`CREATE TABLE orders (id INT PRIMARY KEY, total FLOAT);
		 SELECT * FROM orders ORDER BY RAND() LIMIT 5;`,
		`CREATE TABLE nopk (x INT, y INT);
		 SELECT y FROM nopk WHERE x = 5;`,
		`   `, // blank workload: empty report, not an error
	}
	reports, err := New().CheckBatch(context.Background(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(workloads) {
		t.Fatalf("reports = %d, want %d", len(reports), len(workloads))
	}
	// Each batch slot matches the one-shot path on the same workload.
	for i, w := range workloads[:2] {
		want, err := New().CheckSQL(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports[i].Findings) != len(want.Findings) {
			t.Errorf("workload %d: batch found %d, CheckSQL found %d",
				i, len(reports[i].Findings), len(want.Findings))
		}
	}
	if !reports[0].Has("order-by-rand") || reports[1].Has("order-by-rand") {
		t.Error("batch reports not mapped to their workloads in order")
	}
	if len(reports[2].Findings) != 0 || reports[2].Statements != 0 {
		t.Errorf("blank workload report = %+v", reports[2])
	}
}

func TestCheckBatchEmpty(t *testing.T) {
	if _, err := New().CheckBatch(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestCheckBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().CheckBatch(ctx, []string{"SELECT 1"}); err == nil {
		t.Error("canceled context ignored")
	}
}

// TestCheckerConcurrentUse hammers one Checker from many goroutines —
// the daemon's usage pattern. Run under -race this verifies the
// shared pool and parse cache are safe.
func TestCheckerConcurrentUse(t *testing.T) {
	checker := New(Options{Concurrency: 4})
	workload := `CREATE TABLE t (id INT PRIMARY KEY, v FLOAT);
		SELECT * FROM t ORDER BY RAND();
		INSERT INTO t VALUES (1, 2.5);`
	want, err := checker.CheckSQL(workload)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := checker.CheckSQL(workload)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got.Findings) != len(want.Findings) {
					t.Errorf("concurrent run found %d findings, want %d",
						len(got.Findings), len(want.Findings))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// workloadFixture builds a database with data-rule bait: a
// comma-separated list column (multi-valued attribute), numbers
// stored as text, and a functionally dependent column pair.
func workloadFixture(t *testing.T, seed int) *Database {
	t.Helper()
	db := NewDatabase("fixture")
	db.MustExec(`CREATE TABLE tenants (id INT PRIMARY KEY, user_ids TEXT, region VARCHAR)`)
	db.MustExec(`CREATE TABLE readings (id INT PRIMARY KEY, val TEXT, city VARCHAR, zip VARCHAR)`)
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf(
			`INSERT INTO tenants VALUES (%d, 'U%d,U%d,U%d', 'R%d')`,
			i, seed+i, seed+i+1, seed+i+2, i%4))
		db.MustExec(fmt.Sprintf(
			`INSERT INTO readings VALUES (%d, '%d', 'C%d', 'Z-%d')`,
			i, seed+i*3, i%5, i%5))
	}
	return db
}

// TestCheckWorkloadsIdenticalAcrossConcurrency is the workload-API
// contract: 8+ database-attached workloads produce byte-identical
// reports at Concurrency 1 and at full width.
func TestCheckWorkloadsIdenticalAcrossConcurrency(t *testing.T) {
	var workloads []Workload
	for i := 0; i < 9; i++ {
		workloads = append(workloads, Workload{
			SQL: fmt.Sprintf(`
				SELECT * FROM tenants WHERE user_ids LIKE '%%U%d%%';
				SELECT region FROM tenants t JOIN readings r ON t.id = r.id;
				SELECT val FROM readings WHERE city = 'C%d';`, i, i%5),
			DB: workloadFixture(t, i*1000),
		})
	}
	seq, err := New(Options{Concurrency: 1}).CheckWorkloads(context.Background(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New().CheckWorkloads(context.Background(), workloads) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(workloads) || len(par) != len(workloads) {
		t.Fatalf("report counts: seq=%d par=%d, want %d", len(seq), len(par), len(workloads))
	}
	for i := range workloads {
		sj, _ := json.Marshal(seq[i])
		pj, _ := json.Marshal(par[i])
		if string(sj) != string(pj) {
			t.Errorf("workload %d: sequential and parallel reports differ\nseq: %s\npar: %s", i, sj, pj)
		}
		if len(seq[i].Findings) == 0 {
			t.Errorf("workload %d produced no findings; fixture bait missed", i)
		}
	}
	// The data phase must actually have run: the MVA list column is
	// only confirmable from data.
	if !seq[0].Has("multi-valued-attribute") {
		t.Errorf("data rules did not run; findings = %+v", seq[0].Findings)
	}
}

// TestCheckWorkloadsSampleSizeOverride: the per-workload option must
// override the Checker-wide SampleSize.
func TestCheckWorkloadsSampleSizeOverride(t *testing.T) {
	db := workloadFixture(t, 0)
	checker := New(Options{SampleSize: 500})
	reports, err := checker.CheckWorkloads(context.Background(), []Workload{
		{SQL: `SELECT region FROM tenants`, DB: db, SampleSize: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Statements != 1 {
		t.Errorf("statements = %d", reports[0].Statements)
	}
	// The profile itself is internal; observe the override through
	// metrics instead: the run must have recorded a profile phase.
	m := checker.Metrics()
	for _, ph := range m.Phases {
		if ph.Phase == "profile" && ph.Count == 0 {
			t.Errorf("profile phase not observed: %+v", ph)
		}
	}
}

// TestCheckWorkloadsCanceled: CheckWorkloads must return ctx.Err()
// when the request context is canceled.
func TestCheckWorkloadsCanceled(t *testing.T) {
	db := workloadFixture(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New().CheckWorkloads(ctx, []Workload{{SQL: `SELECT 1`, DB: db}})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestCheckWorkloadsEmptyBatch mirrors CheckBatch's contract.
func TestCheckWorkloadsEmptyBatch(t *testing.T) {
	if _, err := New().CheckWorkloads(context.Background(), nil); err == nil {
		t.Error("empty batch should error")
	}
}

// TestSharedCacheAcrossCheckers: two Checkers with one injected Cache
// parse a repeated workload once.
func TestSharedCacheAcrossCheckers(t *testing.T) {
	cache := NewCache(1 << 20)
	sql := `CREATE TABLE t (id INT PRIMARY KEY); SELECT * FROM t ORDER BY RAND();`
	a := New(Options{SharedCache: cache})
	if _, err := a.CheckSQL(sql); err != nil {
		t.Fatal(err)
	}
	missesAfterA := cache.Stats().Misses
	b := New(Options{SharedCache: cache})
	if _, err := b.CheckSQL(sql); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != missesAfterA {
		t.Errorf("second Checker re-parsed: misses %d -> %d", missesAfterA, st.Misses)
	}
	if st.Hits == 0 || st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("shared cache unused: %+v", st)
	}
}

// TestCheckerMetrics: the public snapshot is coherent after a check.
func TestCheckerMetrics(t *testing.T) {
	checker := New(Options{Concurrency: 2})
	if _, err := checker.CheckSQL(`SELECT * FROM t ORDER BY RAND()`); err != nil {
		t.Fatal(err)
	}
	m := checker.Metrics()
	if m.Statements.Size != 2 || m.Statements.Tasks == 0 {
		t.Errorf("statement pool = %+v", m.Statements)
	}
	if m.Cache.Misses == 0 {
		t.Errorf("cache = %+v", m.Cache)
	}
	if len(m.Phases) == 0 {
		t.Error("no phase histograms")
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("metrics must be JSON-serializable: %v", err)
	}
}
