// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the pipeline benchmarks gating this repo's
// concurrency work (one benchmark per artifact — DESIGN.md §4 is the
// index mapping each benchmark to its paper figure).
//
//	go test -bench=. -benchmem
//
// The per-experiment AP-vs-fixed timings print through -v via b.Log;
// `go run ./cmd/apbench` renders them as tables.
package sqlcheck

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/core"
	"sqlcheck/internal/corpus"
	"sqlcheck/internal/exec"
	"sqlcheck/internal/experiments"
	"sqlcheck/internal/parser"
	"sqlcheck/internal/schema"
	"sqlcheck/internal/storage"
)

// BenchmarkFigure3MVATasks regenerates Figure 3: the three GlobaLeaks
// tasks on the anti-pattern vs fixed design. Reported metrics are the
// per-task speedups.
func BenchmarkFigure3MVATasks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := experiments.Figure3(experiments.Small)
		for j, m := range ms {
			b.ReportMetric(m.Factor(), fmt.Sprintf("task%d-speedup", j+1))
		}
	}
}

// Per-task micro benchmarks: the AP and fixed sides of Figure 3's
// Task #1, so `-bench Figure3Task1` shows the raw per-query costs.
func BenchmarkFigure3Task1AP(b *testing.B) {
	db := corpus.GlobaLeaksMVA(corpus.GlobaLeaksOptions{Tenants: 800, Users: 2400, UsersPerTenant: 3})
	q := `SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1200[[:>:]]'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBench(b, db, q)
	}
}

func BenchmarkFigure3Task1Fixed(b *testing.B) {
	db := corpus.GlobaLeaksFixed(corpus.GlobaLeaksOptions{Tenants: 800, Users: 2400, UsersPerTenant: 3})
	q := `SELECT T.* FROM Hosting AS H JOIN Tenants AS T ON H.Tenant_ID = T.Tenant_ID WHERE H.User_ID = 'U1200'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBench(b, db, q)
	}
}

func mustBench(b *testing.B, db *storage.Database, q string) {
	b.Helper()
	if _, err := exec.RunSQL(db, q); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure8 regenerates Figure 8 (a–i) and reports each
// sub-experiment's AP/fixed factor.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := experiments.Figure8(experiments.Small)
		for _, m := range ms {
			b.ReportMetric(m.Factor(), firstWord(m.Label)+"-x")
		}
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

// BenchmarkTable2Detection regenerates Table 2: detection quality of
// sqlcheck vs dbdeo over the labeled corpus. Reported metrics are
// false positives per detector.
func BenchmarkTable2Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(experiments.Small)
		b.ReportMetric(float64(res.TotalSqlcheck.FP), "sqlcheck-fp")
		b.ReportMetric(float64(res.TotalDbdeo.FP), "dbdeo-fp")
		b.ReportMetric(100*res.TotalSqlcheck.Recall(), "sqlcheck-recall-%")
		b.ReportMetric(100*res.TotalDbdeo.Recall(), "dbdeo-recall-%")
	}
}

// BenchmarkTable3Distribution regenerates Table 3's per-source
// detection totals.
func BenchmarkTable3Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(experiments.Small)
		s, d := 0, 0
		for _, n := range res.GitHubS {
			s += n
		}
		for _, n := range res.GitHubD {
			d += n
		}
		b.ReportMetric(float64(s), "github-sqlcheck")
		b.ReportMetric(float64(d), "github-dbdeo")
	}
}

// BenchmarkTable4Django regenerates the Django application audit
// (Tables 4 and 7).
func BenchmarkTable4Django(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4()
		det, rep := 0, 0
		for _, r := range rows {
			det += r.Detected
			rep += r.Reported
		}
		b.ReportMetric(float64(det), "detected")
		b.ReportMetric(float64(rep), "reported")
	}
}

// BenchmarkTable5DataAnalysis regenerates the Kaggle data-analysis
// experiment (Tables 5 and 6).
func BenchmarkTable5DataAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5()
		total := 0
		for _, r := range rows {
			total += r.Detected
		}
		b.ReportMetric(float64(total), "detected")
	}
}

// BenchmarkExample6Ranking regenerates the ranking-model walkthrough
// (Figures 6/7, Example 6).
func BenchmarkExample6Ranking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := experiments.Example6()
		b.ReportMetric(e.C1IndexUnderuse, "c1-index-underuse")
		b.ReportMetric(e.C1EnumTypes, "c1-enum-types")
		b.ReportMetric(e.C2IndexUnderuse, "c2-index-underuse")
		b.ReportMetric(e.C2EnumTypes, "c2-enum-types")
	}
}

// BenchmarkUserStudy regenerates the §8.3 fix-acceptance pipeline.
func BenchmarkUserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.UserStudyReport()
		b.ReportMetric(100*res.Efficacy(), "efficacy-%")
		b.ReportMetric(float64(res.Detected), "detected")
	}
}

// BenchmarkAdjacencyAblation regenerates the §8.5 version ablation.
func BenchmarkAdjacencyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := experiments.AdjacencyAblation(experiments.Small)
		b.ReportMetric(ms[0].Factor(), "v9-x")
		b.ReportMetric(ms[1].Factor(), "v11-x")
	}
}

// BenchmarkDetectThroughput measures end-to-end detection throughput
// on a single application workload — the tool's interactive latency.
func BenchmarkDetectThroughput(b *testing.B) {
	c := corpus.GitHub(corpus.GitHubOptions{Repos: 1, Seed: 42, MinStatements: 40, MaxStatements: 40})
	sqlText := ""
	for _, s := range c.Repos[0].Statements {
		sqlText += s + ";\n"
	}
	checker := New()
	// Opt out of report memoization: this bench times detection itself
	// (BenchmarkFingerprintMemoized times the serving fast path).
	ws := []Workload{{SQL: sqlText, NoReportCache: true}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
			b.Fatal(err)
		}
	}
}

// corpusWorkloads builds repo-sized SQL scripts from the synthetic
// GitHub corpus: `repos` workloads of `stmtsPer` statements each.
func corpusWorkloads(repos, stmtsPer int) (workloads []string, total int) {
	c := corpus.GitHub(corpus.GitHubOptions{
		Repos: repos, Seed: 42,
		MinStatements: stmtsPer, MaxStatements: stmtsPer,
	})
	for _, r := range c.Repos {
		var sb strings.Builder
		for _, s := range r.Statements {
			sb.WriteString(s)
			sb.WriteString(";\n")
			total++
		}
		workloads = append(workloads, sb.String())
	}
	return workloads, total
}

// BenchmarkCheckSQLParallel measures the concurrent batched pipeline
// against the sequential path on a multi-hundred-statement corpus
// workload (DESIGN.md §4). Both variants run the identical algorithm
// and produce identical reports; on a multi-core runner the parallel
// variant demonstrates the worker pool's speedup, on a single core
// it shows parity. The headline metric is statements per second.
func BenchmarkCheckSQLParallel(b *testing.B) {
	workloads, total := corpusWorkloads(6, 40)
	for _, cfg := range []struct {
		name string
		conc int
	}{
		{"sequential", 1},
		{"parallel", 0}, // GOMAXPROCS workers
	} {
		b.Run(cfg.name, func(b *testing.B) {
			checker := New(Options{Concurrency: cfg.conc})
			// NoReportCache: repeated iterations must keep running the
			// pipeline this bench measures.
			ws := make([]Workload, len(workloads))
			for i, sql := range workloads {
				ws[i] = Workload{SQL: sql, NoReportCache: true}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "stmt/s")
		})
	}
}

// profileBenchDB builds a multi-table fixture sized so the data
// phase dominates analysis: `tables` tables of `rows` rows with
// mixed column shapes (numbers-as-text, list-like strings, FD pairs)
// so every profiling pass does real work.
func profileBenchDB(tables, rows int) *Database {
	inner := storage.NewDatabase("profilebench")
	for t := 0; t < tables; t++ {
		tab := inner.CreateTable(fmt.Sprintf("bench_t%02d", t), []storage.ColumnDef{
			{Name: "id", Class: schema.ClassInteger},
			{Name: "city", Class: schema.ClassChar},
			{Name: "zip", Class: schema.ClassChar},
			{Name: "val", Class: schema.ClassChar},
			{Name: "tags", Class: schema.ClassText},
		})
		for i := 0; i < rows; i++ {
			city := fmt.Sprintf("C%d", i%17)
			tab.MustInsert(
				storage.Int(int64(i)),
				storage.Str(city),
				storage.Str("Z-"+city),
				storage.Str(fmt.Sprintf("%d", i*3)),
				storage.Str(fmt.Sprintf("a%d,b%d,c%d", i%7, i%5, i%3)),
			)
		}
	}
	return &Database{inner: inner}
}

// BenchmarkProfileParallel measures the data-analysis phase — per-
// table profiling, the phase the paper says dominates on real
// applications — serial versus fanned out on the worker pool
// (DESIGN.md §4). Every iteration uses a fresh sampling seed, so each
// pass misses the profile-memoization cache and the bench times the
// cold profiling path (BenchmarkProfileMemoized covers the warm
// path). Reports are identical either way at a given seed.
//
// The historical regression this bench diagnoses: with the old
// clone-and-rescan profiler, per-table tasks allocated so heavily
// (~60k allocs and ~2MB per table) that on multi-core runners the
// fan-out serialized on the allocator and GC assists — parallel ≈
// serial despite 16 independent tasks. The single-pass profiler cut
// allocations >5x, which is what lets the fan-out scale; the parent
// benchmark computes the realized speedup, logs it, and fails on
// multi-core hardware if the parallel path stops winning. The
// headline metric is table profiles per second.
func BenchmarkProfileParallel(b *testing.B) {
	const tables, rows = 16, 2000
	db := profileBenchDB(tables, rows)
	var serialNs, parallelNs float64
	for _, cfg := range []struct {
		name string
		conc int
		out  *float64
	}{
		{"serial", 1, &serialNs},
		{"parallel", 0, &parallelNs}, // GOMAXPROCS workers
	} {
		b.Run(cfg.name, func(b *testing.B) {
			checker := New(Options{Concurrency: cfg.conc})
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh seed per iteration: a distinct cache key, so the
				// memoization layer never short-circuits the measured work.
				ws := []Workload{{SQL: `SELECT city FROM bench_t00 WHERE id = 7`,
					DB: db, ProfileSeed: uint64(i) + 1, NoReportCache: true}}
				if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tables*b.N)/b.Elapsed().Seconds(), "profiles/s")
			*cfg.out = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if cfg.conc == 0 && serialNs > 0 {
				// The speedup note: serial-vs-parallel ratio, printed on
				// the result line so every bench run (and the CI
				// artifact) records whether the fan-out is winning.
				speedup := serialNs / *cfg.out
				procs := runtime.GOMAXPROCS(0)
				b.ReportMetric(speedup, "speedup-x")
				b.Logf("data-phase parallelism: parallel %.2fx vs serial over %d tables (GOMAXPROCS=%d, serial %.1fms, parallel %.1fms per check)",
					speedup, tables, procs, serialNs/1e6, *cfg.out/1e6)
				// Fail only on outright serialization (parity despite
				// >=4 cores) — sub-linear scaling on a noisy shared
				// runner is the benchcmp gate's job, not a hard error.
				if procs >= 4 && speedup < 1.05 {
					b.Errorf("parallel data phase shows no speedup (%.2fx) on a %d-way machine; per-table tasks are serializing again",
						speedup, procs)
				}
			}
		})
	}
}

// BenchmarkProfileMemoized measures snapshot-versioned profile
// memoization — the cache that turns repeated checks of a registered,
// unchanged database from a sampling pass into an integer compare per
// table (DESIGN.md §2e). "cold" builds a fresh Checker per iteration,
// so every table profiles from scratch; "warm" reuses one Checker, so
// after the first batch every table is a cache hit keyed on its
// frozen (identity, version). Reports are byte-identical either way —
// pinned by the golden corpus — and the parent benchmark logs the
// realized speedup and fails if the warm path loses its >=10x edge.
func BenchmarkProfileMemoized(b *testing.B) {
	const tables, rows = 16, 2000
	db := profileBenchDB(tables, rows)
	// NoReportCache: the warm loop must exercise the profile cache, not
	// be served whole from the report cache above it.
	workloads := []Workload{{SQL: `SELECT city FROM bench_t00 WHERE id = 7`, DBName: "bench", NoReportCache: true}}
	var coldNs, warmNs float64

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			checker := New()
			if err := checker.RegisterDatabase("bench", db); err != nil {
				b.Fatal(err)
			}
			if _, err := checker.CheckWorkloads(context.Background(), workloads); err != nil {
				b.Fatal(err)
			}
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("warm", func(b *testing.B) {
		checker := New()
		if err := checker.RegisterDatabase("bench", db); err != nil {
			b.Fatal(err)
		}
		// Prime the cache; the measured loop is pure warm path.
		if _, err := checker.CheckWorkloads(context.Background(), workloads); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := checker.CheckWorkloads(context.Background(), workloads); err != nil {
				b.Fatal(err)
			}
		}
		warmNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if coldNs > 0 {
			// The speedup note, on the result line so every bench run
			// records the memoization payoff alongside ns/op.
			speedup := coldNs / warmNs
			b.ReportMetric(speedup, "speedup-x")
			b.Logf("profile memoization: warm check %.1fx faster than cold over %d tables (cold %.1fms, warm %.2fms per check)",
				speedup, tables, coldNs/1e6, warmNs/1e6)
			if speedup < 10 {
				b.Errorf("warm registered-database check only %.1fx faster than cold; want >= 10x", speedup)
			}
		}
	})
}

// BenchmarkFingerprintMemoized measures fingerprint-keyed report
// memoization — the serving fast path that turns a repeated workload
// into a cache probe plus a report clone, with no parsing, profiling,
// or rule evaluation (DESIGN.md §2f). "cold" analyzes a structurally
// identical workload whose literals change every iteration: the
// fingerprint matches but the byte-equality check rightly refuses to
// serve, so each pass runs the full pipeline (a variant miss — the
// cache's designed soundness boundary). "warm" repeats the workload
// byte-identically, so after priming every check is a report-cache
// hit. Reports are byte-identical warm or cold (pinned by the golden
// corpus and the race suite); the parent benchmark reports warm
// throughput and the realized speedup, and fails below 100k checks/s
// or a 20x edge.
func BenchmarkFingerprintMemoized(b *testing.B) {
	sql := cleanCRUD(12) +
		"SELECT * FROM orders ORDER BY RAND() LIMIT 3;\n" +
		"SELECT name FROM users WHERE name LIKE '%smith';\n"
	var coldNs, warmNs float64

	b.Run("cold", func(b *testing.B) {
		checker := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh literal each pass: same fingerprint, different
			// bytes — the memoized report must not be served, so this
			// times the pipeline the warm path skips.
			ws := []Workload{{SQL: sql + fmt.Sprintf("SELECT id FROM carts WHERE token = 'tok-%d';\n", i)}}
			if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
				b.Fatal(err)
			}
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("warm", func(b *testing.B) {
		checker := New()
		ws := []Workload{{SQL: sql + "SELECT id FROM carts WHERE token = 'tok-0';\n"}}
		// Prime the cache; the measured loop is pure fast path.
		if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
			b.Fatal(err)
		}
		// The cold subbench just churned tens of MB of garbage; collect
		// it now so the microsecond-scale warm loop doesn't pay cold's
		// GC debt through mark assists.
		runtime.GC()
		b.ResetTimer()
		b.ReportAllocs()
		// Shared-runner hazard: a multi-ms scheduler stall landing in a
		// 0.3s measurement window inflates a ~1.5µs/op loop several
		// fold and fails the floor spuriously. The reported ns/op stays
		// the framework's whole-window measurement (benchcmp medians
		// absorb a stalled count), but the capability floors below gate
		// on the best 1000-iteration chunk — what the warm path can do
		// when the machine actually runs it.
		const chunk = 1000
		bestNs := float64(0)
		for done := 0; done < b.N; {
			n := chunk
			if rest := b.N - done; rest < n {
				n = rest
			}
			t0 := time.Now()
			for i := 0; i < n; i++ {
				if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
					b.Fatal(err)
				}
			}
			perOp := float64(time.Since(t0).Nanoseconds()) / float64(n)
			if bestNs == 0 || perOp < bestNs {
				bestNs = perOp
			}
			done += n
		}
		warmNs = bestNs
		checks := 1e9 / warmNs
		b.ReportMetric(checks, "checks/s")
		if rc := checker.Metrics().ReportCache; rc.Hits < int64(b.N) {
			b.Fatalf("warm loop was not served from the report cache: %+v", rc)
		}
		if coldNs > 0 {
			speedup := coldNs / warmNs
			b.ReportMetric(speedup, "speedup-x")
			b.Logf("report memoization: warm check %.0fx faster than cold (cold %.1fµs, warm %.2fµs per check, %.0fk checks/s)",
				speedup, coldNs/1e3, warmNs/1e3, checks/1e3)
			// Calibration rounds have no full chunk to measure; gate
			// the settled runs.
			if b.N >= chunk {
				if checks < 100_000 {
					b.Errorf("warm serving path at %.0f checks/s; want >= 100k", checks)
				}
				if speedup < 20 {
					b.Errorf("warm check only %.1fx faster than cold; want >= 20x", speedup)
				}
			}
		}
	})
}

// BenchmarkRegistryReuse measures the daemon registry's reason to
// exist: analyzing a database-attached workload against a registered
// database (fixture DDL/DML executed once, per-request cost is a
// copy-on-write snapshot) versus rebuilding the fixture from SQL on
// every request, as the inline `fixture` path does. The gap is the
// per-request fixture replay the registry amortizes away.
func BenchmarkRegistryReuse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE tenants (id INT PRIMARY KEY, name TEXT, user_ids TEXT);\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "INSERT INTO tenants VALUES (%d, 'tenant-%d', 'U%d,U%d,U%d');\n",
			i, i, i, i+300, i+600)
	}
	fixture := sb.String()
	const workloadSQL = `SELECT * FROM tenants WHERE user_ids LIKE '%U7%'`

	b.Run("registered", func(b *testing.B) {
		checker := New()
		db := NewDatabase("bench")
		if err := db.ExecScript(fixture); err != nil {
			b.Fatal(err)
		}
		if err := checker.RegisterDatabase("bench", db); err != nil {
			b.Fatal(err)
		}
		workloads := []Workload{{SQL: workloadSQL, DBName: "bench", NoReportCache: true}}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := checker.CheckWorkloads(context.Background(), workloads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inline", func(b *testing.B) {
		checker := New()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := NewDatabase("bench")
			if err := db.ExecScript(fixture); err != nil {
				b.Fatal(err)
			}
			if _, err := checker.CheckWorkloads(context.Background(), []Workload{{SQL: workloadSQL, DB: db, NoReportCache: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryOnlyWorkload measures demand-planned phase skipping —
// spillScanDB builds one table of string-heavy rows at the storage
// layer for the page-cache scan benchmark — identical data per call
// so the managed and unmanaged variants scan the same bytes.
func spillScanDB(rows int) *storage.Database {
	db := storage.NewDatabase("spillscan")
	t := db.CreateTable("events", []storage.ColumnDef{
		{Name: "id", Class: schema.ClassInteger},
		{Name: "kind", Class: schema.ClassChar},
		{Name: "payload", Class: schema.ClassText},
	})
	for i := 0; i < rows; i++ {
		t.MustInsert(storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("kind-%d", i%7)),
			storage.Str(fmt.Sprintf("payload %d: the quick brown fox jumps over the lazy dog %d", i, i*7)))
	}
	return db
}

// BenchmarkSpillScan measures what page-cache management costs the
// read path (DESIGN.md §2i). "resident" scans an unmanaged table —
// the zero-overhead fast path every inline database keeps. "hot"
// scans the same data adopted into a page cache whose budget holds
// the whole working set: nothing spills, so the delta is pure
// frame-management overhead (one pin/unpin per 128-row page). "cold"
// (informational, opt-in via SQLCHECK_BENCH_COLD=1) scans under a
// budget ~1/8 of the data, so every pass faults most pages back from
// the spill file — the price of exceeding the budget, paid in disk
// reads instead of OOM. Cold is excluded from the default (gated)
// run: fault latency rides the OS file cache, which drifts too much
// run-to-run to sit under benchcmp's regression threshold. The
// parent gates hot within 1.5x of resident: the spill machinery must
// be free when the working set fits.
func BenchmarkSpillScan(b *testing.B) {
	const rows = 48 * storage.PageRows // 48 pages, ~1 MiB of row data
	scan := func(b *testing.B, t *storage.Table) {
		live := 0
		t.ScanReadOnly(func(id int64, r storage.Row) bool {
			live++
			return true
		})
		if live != rows {
			b.Fatalf("scan saw %d rows, want %d", live, rows)
		}
	}
	var residentNs, hotNs float64

	b.Run("resident", func(b *testing.B) {
		t := spillScanDB(rows).Table("events")
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scan(b, t)
		}
		residentNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("hot", func(b *testing.B) {
		db := spillScanDB(rows)
		c := storage.NewPageCache(64<<20, b.TempDir()) // whole table fits
		defer c.Close()
		c.Adopt(db)
		t := db.Table("events")
		scan(b, t) // settle residency before timing
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scan(b, t)
		}
		hotNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if st := c.Stats(); st.SpilledPages != 0 {
			b.Fatalf("hot working set should stay resident, stats %+v", st)
		}
	})

	b.Run("cold", func(b *testing.B) {
		if os.Getenv("SQLCHECK_BENCH_COLD") == "" {
			b.Skip("set SQLCHECK_BENCH_COLD=1 to time fault-dominated scans (too I/O-noisy for the regression gate)")
		}
		db := spillScanDB(rows)
		c := storage.NewPageCache(128<<10, b.TempDir()) // ~1/8 of the data
		defer c.Close()
		c.Adopt(db)
		t := db.Table("events")
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scan(b, t)
		}
		coldNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if st := c.Stats(); st.Faults == 0 {
			b.Fatalf("cold scans must fault, stats %+v", st)
		}
		if residentNs > 0 {
			b.ReportMetric(coldNs/residentNs, "vs-resident-x")
		}
	})

	if residentNs > 0 && hotNs > 0 {
		ratio := hotNs / residentNs
		b.ReportMetric(ratio, "hot-vs-resident-x")
		b.Logf("spill scan: resident %.2fms, hot (cache-managed) %.2fms, ratio %.2fx",
			residentNs/1e6, hotNs/1e6, ratio)
		if ratio > 1.5 {
			b.Errorf("cache-managed hot scan %.2fx slower than unmanaged; want <= 1.5x", ratio)
		}
	}
}

// the rule catalog's metadata turned into wall-clock time. Both
// variants analyze the same SQL against the same registered
// multi-table database; "full" runs the whole catalog (snapshot +
// schema reflection + the data phase — profiles come from the
// memoization cache after the first iteration, so the steady state
// measured here is the warm full path), "query-only" restricts the
// workload to need-free query rules, so the engine takes no snapshot
// and touches neither schema nor profiles. The gap is the per-request
// cost rule selection avoids instead of filtering after the fact.
func BenchmarkQueryOnlyWorkload(b *testing.B) {
	db := profileBenchDB(16, 2000)
	const workloadSQL = `SELECT * FROM bench_t00 ORDER BY RAND();
SELECT id FROM bench_t01 WHERE city = 'C3';
INSERT INTO bench_t02 VALUES (1, 'a', 'b', 'c', 'd');`
	for _, cfg := range []struct {
		name  string
		rules []string
	}{
		{"full", nil},
		{"query-only", []string{"column-wildcard", "order-by-rand", "implicit-columns", "too-many-joins"}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			checker := New()
			if err := checker.RegisterDatabase("bench", db); err != nil {
				b.Fatal(err)
			}
			workloads := []Workload{{SQL: workloadSQL, DBName: "bench", Rules: cfg.rules, NoReportCache: true}}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckWorkloads(context.Background(), workloads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// cleanCRUD builds a production-shaped workload: simple lookups and
// writes with no anti-patterns, where the dispatch prefilter should
// skip nearly the whole catalog per statement.
func cleanCRUD(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "SELECT id FROM users WHERE email = 'u%d@example.com';\n", i)
		case 1:
			fmt.Fprintf(&sb, "UPDATE sessions SET expires_at = %d WHERE token = 'tok%d';\n", i, i)
		case 2:
			fmt.Fprintf(&sb, "SELECT name FROM products WHERE sku = %d;\n", i)
		case 3:
			fmt.Fprintf(&sb, "DELETE FROM carts WHERE id = %d;\n", i)
		}
	}
	return sb.String()
}

// BenchmarkRuleDispatch isolates the rule-dispatch prefilter: the
// per-statement query-rule phase over a prebuilt context, with gates
// versus a full catalog scan per statement (DESIGN.md §4). The
// context build and global phases are excluded so the two variants
// differ only in dispatch. Two workload shapes: "clean" is
// production-style CRUD where the prefilter skips most of the
// catalog; "dense" is the anti-pattern-saturated evaluation corpus —
// the prefilter's worst case, where gates admit most rules and add
// only overhead.
func BenchmarkRuleDispatch(b *testing.B) {
	dense, _ := corpusWorkloads(1, 200)
	for _, w := range []struct {
		name string
		sql  string
	}{
		{"clean", cleanCRUD(200)},
		{"dense", dense[0]},
	} {
		stmts := parser.ParseAll(w.sql)
		actx := appctx.Build(stmts, nil, core.DefaultOptions().Config)
		for _, cfg := range []struct {
			name  string
			noPre bool
		}{
			{"prefilter", false},
			{"full-scan", true},
		} {
			b.Run(w.name+"/"+cfg.name, func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.NoPrefilter = cfg.noPre
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					core.DetectQueries(actx, opts)
				}
			})
		}
	}
}

// BenchmarkColdParse measures the fully cold single-statement check —
// the path a never-before-seen query takes through lexing, parsing,
// context build, and rule evaluation with every cache defeated (a
// unique literal per iteration, report memoization off). This is the
// allocation benchmark for the zero-alloc lexing work: the gated
// allocs/op pins the removal of per-token strings.ToUpper, the
// streaming token paths, and the struct-keyed context maps (the
// rewrite cut allocs/op by ~half; see DESIGN.md §2g).
func BenchmarkColdParse(b *testing.B) {
	checker := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := []Workload{{
			SQL: fmt.Sprintf(
				"SELECT id, name FROM users WHERE email = 'user-%d@example.com' AND status = 'active'", i),
			NoReportCache: true,
		}}
		if _, err := checker.CheckWorkloads(context.Background(), ws); err != nil {
			b.Fatal(err)
		}
	}
}

// coalescedBatch builds the duplicate-heavy batch: `unique` distinct
// scripts, each repeated `repeat` times, salted so one iteration's
// texts never byte-match another's (every leader is a report-cache
// variant miss and the bench times coalescing, not cache serving).
func coalescedBatch(unique, repeat, salt int) []Workload {
	ws := make([]Workload, 0, unique*repeat)
	for u := 0; u < unique; u++ {
		sql := fmt.Sprintf(
			"SELECT * FROM orders WHERE region = 'r%d-%d' ORDER BY RAND();\nSELECT name FROM users WHERE team = 't%d-%d'", u, salt, u, salt)
		for r := 0; r < repeat; r++ {
			ws = append(ws, Workload{SQL: sql})
		}
	}
	return ws
}

// BenchmarkBatchCoalesced measures in-batch statement coalescing on a
// duplicate-heavy batch: 64 workloads that are 8 distinct scripts
// repeated 8x, the shape of an ORM-driven request burst. "coalesced"
// is the default path — each distinct script runs the pipeline once
// and fans its result out to the seven repeats; "uncoalesced" is the
// same batch under Options.NoCoalesce, paying the pipeline 64 times.
// Reports are byte-identical either way — asserted here once before
// timing and pinned harder by TestCoalesceGolden — and the parent
// benchmark reports the realized speedup and fails below the 2x the
// optimization is specified to deliver on >=8x-duplicate batches.
func BenchmarkBatchCoalesced(b *testing.B) {
	const unique, repeat = 8, 16

	// One-time transparency check: the coalesced and uncoalesced paths
	// must serve byte-identical reports for the benchmarked batch.
	mustJSON := func(reports []*Report, err error) string {
		if err != nil {
			b.Fatal(err)
		}
		raw, err := json.Marshal(reports)
		if err != nil {
			b.Fatal(err)
		}
		return string(raw)
	}
	batch := coalescedBatch(unique, repeat, -1)
	co := mustJSON(New().CheckWorkloads(context.Background(), batch))
	un := mustJSON(New(Options{NoCoalesce: true}).CheckWorkloads(context.Background(), batch))
	if co != un {
		b.Fatal("coalesced batch reports differ from uncoalesced reports")
	}

	var coalescedNs, uncoalescedNs float64
	for _, cfg := range []struct {
		name       string
		noCoalesce bool
		out        *float64
	}{
		{"coalesced", false, &coalescedNs},
		{"uncoalesced", true, &uncoalescedNs},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			checker := New(Options{NoCoalesce: cfg.noCoalesce})
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckWorkloads(context.Background(), coalescedBatch(unique, repeat, i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(unique*repeat*b.N)/b.Elapsed().Seconds(), "workloads/s")
			*cfg.out = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if cfg.noCoalesce && coalescedNs > 0 {
				speedup := *cfg.out / coalescedNs
				b.ReportMetric(speedup, "speedup-x")
				b.Logf("batch coalescing: %dx%d duplicate batch %.2fx faster coalesced (coalesced %.2fms, uncoalesced %.2fms)",
					unique, repeat, speedup, coalescedNs/1e6, *cfg.out/1e6)
				// Calibration rounds (b.N of a few) time one or two
				// batches and are pure scheduling noise; gate only the
				// settled measurement runs.
				if b.N >= 10 && speedup < 2 {
					b.Errorf("coalesced duplicate-heavy batch only %.2fx faster; want >= 2x", speedup)
				}
			}
		})
	}
}

// BenchmarkTable1Catalog and BenchmarkTable8Features render the static
// tables (cheap; present for per-artifact completeness).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkTable8Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table8(io.Discard)
	}
}
