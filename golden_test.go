package sqlcheck

// Golden-corpus regression test: the generator corpora that stand in
// for the paper's data sets run through CheckWorkloads as one batch,
// and the resulting finding sets are pinned in a checked-in golden
// file. Any drift in rule output — a detector loosened, a gate
// over-pruning, ranking reordered, profiling skewed — fails CI with a
// diff instead of slipping through silently. After an intentional
// rule change, regenerate with:
//
//	go test -run TestGoldenCorpus -update .

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"testing"

	"sqlcheck/internal/corpus"
	"sqlcheck/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

const goldenPath = "testdata/golden/corpus.json"

// goldenWorkloads assembles a deterministic cross-section of the
// corpus: query-only GitHub repos, database-attached Django apps, a
// data-only Kaggle database, the GlobaLeaks MVA study, and rule-subset
// workloads exercising the demand-planned phase paths (query-rule-only
// runs that skip snapshot+profiling, data-rule-only runs that skip the
// inter-query phase).
func goldenWorkloads(t *testing.T) (names []string, ws []Workload) {
	t.Helper()
	add := func(name, sql string, db *storage.Database) {
		w := Workload{SQL: sql}
		if db != nil {
			w.DB = &Database{inner: db}
		}
		names = append(names, name)
		ws = append(ws, w)
	}
	for _, repo := range corpus.GitHub(corpus.GitHubOptions{Repos: 6, Seed: 3}).Repos {
		add("github/"+repo.Name, strings.Join(repo.Statements, ";\n"), nil)
	}
	for _, app := range corpus.DjangoSuite(corpus.DjangoSuiteOptions{})[:3] {
		add("django/"+app.Name, strings.Join(app.Statements, ";\n"), app.DB)
	}
	for _, k := range corpus.KaggleSuite(corpus.KaggleSuiteOptions{}) {
		if k.Name == "history-of-baseball" {
			add("kaggle/"+k.Name, "", k.DB)
		}
	}
	add("globaleaks/mva",
		`SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U10[[:>:]]'`,
		corpus.GlobaLeaksMVA(corpus.GlobaLeaksOptions{Tenants: 60, Users: 180, UsersPerTenant: 3, Seed: 2}))
	// Rule-subset entries: the same Django app twice, once restricted
	// to need-free query rules (the engine analyzes it database-free:
	// no snapshot, no profiling) and once to data rules only (profiled,
	// but no inter-query phase). Golden pins that subset plans change
	// which phases run without drifting the selected rules' findings.
	app := corpus.DjangoSuite(corpus.DjangoSuiteOptions{})[0]
	appSQL := strings.Join(app.Statements, ";\n")
	names = append(names, "subset/query-only/"+app.Name)
	ws = append(ws, Workload{SQL: appSQL, DB: &Database{inner: app.DB},
		Rules: []string{"column-wildcard", "order-by-rand", "implicit-columns",
			"distinct-join", "too-many-joins", "pattern-matching"}})
	for _, k := range corpus.KaggleSuite(corpus.KaggleSuiteOptions{}) {
		if k.Name == "history-of-baseball" {
			names = append(names, "subset/data-only/"+k.Name)
			ws = append(ws, Workload{SQL: "", DB: &Database{inner: k.DB},
				Rules: []string{"multi-valued-attribute", "redundant-column",
					"incorrect-data-type", "missing-timezone", "denormalized-table"}})
		}
	}
	return names, ws
}

// findingKey pins everything a rule change could move: identity,
// site, confidence, and the ranking score (list order is the report's
// ranked order).
func findingKey(f Finding) string {
	return fmt.Sprintf("%s q%d %s.%s conf=%.2f score=%.4f",
		f.Rule, f.Query, f.Table, f.Column, f.Confidence, f.Score)
}

func TestGoldenCorpus(t *testing.T) {
	names, ws := goldenWorkloads(t)
	checker := New()
	reports, err := checker.CheckWorkloads(t.Context(), ws)
	if err != nil {
		t.Fatal(err)
	}
	// The subset entries must have exercised the demand-planned phase
	// paths: the query-only workload ran snapshot- and profile-free,
	// the data-only workload skipped the inter-query phase.
	m := checker.Metrics()
	if m.Skips.Snapshot < 1 || m.Skips.Profile < 1 {
		t.Errorf("query-only subset did not skip snapshot/profiling: skips = %+v", m.Skips)
	}
	if m.Skips.InterQuery < 1 {
		t.Errorf("data-only subset did not skip the inter-query phase: skips = %+v", m.Skips)
	}
	got := make(map[string][]string, len(names))
	for i, rep := range reports {
		keys := []string{}
		for _, f := range rep.Findings {
			keys = append(keys, findingKey(f))
		}
		got[names[i]] = keys
	}

	// Warm-cache passes: the same batch again on the same checker,
	// twice. The first repeat opts out of report memoization, so the
	// pipeline runs and serves table profiles from the memoization
	// cache (profiling is deterministic — a hit is exactly what a
	// fresh pass computes). The second repeat takes the serving fast
	// path: every workload is a report-cache hit and no phase runs.
	// The golden contract extends to both: warm reports must be
	// byte-identical to cold ones, with real cache traffic.
	warmWS := make([]Workload, len(ws))
	copy(warmWS, ws)
	for i := range warmWS {
		warmWS[i].NoReportCache = true
	}
	assertWarmEqual := func(label string, reports []*Report) {
		t.Helper()
		for i, rep := range reports {
			keys := []string{}
			for _, f := range rep.Findings {
				keys = append(keys, findingKey(f))
			}
			if !slices.Equal(keys, got[names[i]]) {
				t.Errorf("%s: %s findings differ from cold run\nwarm: %v\ncold: %v",
					names[i], label, keys, got[names[i]])
			}
		}
	}
	warm, err := checker.CheckWorkloads(t.Context(), warmWS)
	if err != nil {
		t.Fatal(err)
	}
	assertWarmEqual("profile-warm", warm)
	if pc := checker.Metrics().ProfileCache; pc.Hits == 0 {
		t.Errorf("warm pass produced no profile-cache hits: %+v", pc)
	}
	memo, err := checker.CheckWorkloads(t.Context(), ws)
	if err != nil {
		t.Fatal(err)
	}
	assertWarmEqual("report-memoized", memo)
	if rc := checker.Metrics().ReportCache; rc.Hits == 0 {
		t.Errorf("memoized pass produced no report-cache hits: %+v", rc)
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata/golden", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d workloads", goldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for name, wantKeys := range want {
		gotKeys, ok := got[name]
		if !ok {
			t.Errorf("workload %s in golden file but not generated", name)
			continue
		}
		if len(gotKeys) != len(wantKeys) {
			t.Errorf("%s: %d findings, golden has %d\ngot:  %v\nwant: %v",
				name, len(gotKeys), len(wantKeys), gotKeys, wantKeys)
			continue
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Errorf("%s finding %d drifted:\ngot:  %s\nwant: %s", name, i, gotKeys[i], wantKeys[i])
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("workload %s missing from golden file (run with -update)", name)
		}
	}
}
