package sqlcheck

import (
	"fmt"

	"sqlcheck/internal/exec"
	"sqlcheck/internal/parser"
	"sqlcheck/internal/storage"
)

// Database is the embedded relational engine: an in-memory SQL
// database with primary/foreign keys, CHECK constraints, B+tree
// indexes, and a cost-modeled executor. It serves two roles: the
// data-analysis target for CheckApplication (paper §4.2) and the
// measurement substrate behind the benchmark harness.
type Database struct {
	inner *storage.Database
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{inner: storage.NewDatabase(name)}
}

// innerDB unwraps a possibly-nil public handle.
func innerDB(db *Database) *storage.Database {
	if db == nil {
		return nil
	}
	return db.inner
}

// Result is the outcome of executing one statement.
type Result struct {
	// Columns names the SELECT output columns.
	Columns []string
	// Rows holds SELECT output values rendered as strings; NULL
	// renders as "NULL".
	Rows [][]string
	// Affected counts rows changed by DML.
	Affected int
	// Plan lists the access paths the executor chose.
	Plan []string
}

// Snapshot returns a frozen copy-on-write view of the database:
// profiling-safe, statement-atomic, and unaffected by statements
// executed on the live handle afterwards. Snapshots are cheap (they
// share row pages with the live tables until a writer mutates them)
// and read-only: DML against a snapshot fails.
func (d *Database) Snapshot() *Database {
	return &Database{inner: d.inner.Snapshot()}
}

// Exec parses and executes one SQL statement (DDL, DML, or SELECT).
// Statements serialize on a per-database writer lock, so concurrent
// Exec calls are safe and snapshots observe statement-atomic states.
func (d *Database) Exec(sql string) (*Result, error) {
	res, err := exec.Run(d.inner, parser.Parse(sql))
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Cols, Affected: res.Affected, Plan: res.Plan}
	for _, row := range res.Rows {
		srow := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				srow[i] = "NULL"
			} else {
				srow[i] = v.String()
			}
		}
		out.Rows = append(out.Rows, srow)
	}
	return out, nil
}

// MustExec executes a statement and panics on error; intended for test
// and example setup code.
func (d *Database) MustExec(sql string) *Result {
	res, err := d.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("sqlcheck: MustExec(%q): %v", sql, err))
	}
	return res
}

// ExecScript executes each statement of a multi-statement script,
// stopping at the first error.
func (d *Database) ExecScript(sql string) error {
	for _, stmt := range parser.ParseAll(sql) {
		if _, err := exec.Run(d.inner, stmt); err != nil {
			return fmt.Errorf("sqlcheck: %q: %w", firstLine(stmt.Raw()), err)
		}
	}
	return nil
}

// Tables returns the table names in creation order.
func (d *Database) Tables() []string {
	var out []string
	for _, t := range d.inner.Tables() {
		out = append(out, t.Name)
	}
	return out
}

// RowCount returns the number of live rows in a table (-1 if the
// table does not exist).
func (d *Database) RowCount(table string) int {
	t := d.inner.Table(table)
	if t == nil {
		return -1
	}
	return t.Len()
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	if len(s) > 80 {
		return s[:80]
	}
	return s
}
