package sqlcheck

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"sqlcheck/internal/appctx"
	"sqlcheck/internal/qanalyze"
	"sqlcheck/internal/rules"
	"sqlcheck/internal/sqlast"
)

// CustomRule defines a user-supplied anti-pattern detector, the public
// face of the paper's §7 extensibility ("a developer may add a new AP
// rule that implements the generic rule interface ... and register it
// in the sqlcheck rule registry").
type CustomRule struct {
	// ID is the stable rule identifier (kebab-case). Must not collide
	// with a built-in rule.
	ID string
	// Name is the human-readable rule name.
	Name string
	// Category is "logical design", "physical design", "query", or
	// "data"; defaults to "query".
	Category string
	// Description explains the anti-pattern.
	Description string
	// Pattern is a regular expression matched against each statement's
	// raw SQL (case-insensitive). Either Pattern or Match must be set.
	Pattern string
	// Match, when set, is called per statement with its raw SQL and
	// takes precedence over Pattern.
	Match func(sql string) bool
	// Message is the diagnosis shown for each finding; defaults to the
	// description.
	Message string
	// Guidance is the textual fix suggestion.
	Guidance string
	// Impact configures the ranking metrics (zero values are fine; the
	// finding then ranks at the bottom).
	Impact Impact
	// Kinds restricts the rule to the named statement kinds, exactly as
	// built-in rules declare dispatch metadata: the engine's prefilter
	// then skips the rule entirely on other statements instead of
	// calling Match. Names are the catalog's kind spellings ("SELECT",
	// "INSERT", "CREATE TABLE", ...; see Rules()[i].Kinds), matched
	// case-insensitively. Empty admits every statement kind. An unknown
	// name fails RegisterRule.
	Kinds []string
	// NeedsSchema declares that the rule's findings depend on schema
	// reflection being available (the refinement context built from DDL
	// and registered databases). Declaring it keeps the engine from
	// planning the schema phase away when this rule is the only one
	// selected.
	NeedsSchema bool
	// NeedsProfile likewise declares a dependency on table data
	// profiles; it implies the profiling phase (and its snapshot) runs
	// for database-attached workloads even when no built-in data rule
	// is selected.
	NeedsProfile bool
}

// Impact is the public mirror of the ranking metric vector (§5.1).
type Impact struct {
	ReadPerf  float64 // speedup factor for reads if fixed
	WritePerf float64 // speedup factor for writes if fixed
	Maint     float64 // refactoring burden, 0..5
	DataAmp   float64 // storage amplification factor, 0..8
	Integrity float64 // 0 or 1
	Accuracy  float64 // 0 or 1
}

// RegisterRule adds a custom rule to the global registry. Subsequent
// Checkers (in this process) will run it. Returns an error for
// malformed definitions; registration is not idempotent — registering
// the same ID twice fails.
func RegisterRule(cr CustomRule) error {
	if cr.ID == "" || cr.Name == "" {
		return errors.New("sqlcheck: custom rule needs ID and Name")
	}
	if rules.ByID(cr.ID) != nil {
		return fmt.Errorf("sqlcheck: rule %q already registered", cr.ID)
	}
	if cr.Match == nil && cr.Pattern == "" {
		return errors.New("sqlcheck: custom rule needs Pattern or Match")
	}
	match := cr.Match
	if match == nil {
		re, err := regexp.Compile("(?is)" + cr.Pattern)
		if err != nil {
			return fmt.Errorf("sqlcheck: bad pattern: %w", err)
		}
		match = re.MatchString
	}
	category := rules.Category(cr.Category)
	switch category {
	case rules.Logical, rules.Physical, rules.Query, rules.Data:
	case "":
		category = rules.Query
	default:
		return fmt.Errorf("sqlcheck: unknown category %q", cr.Category)
	}
	message := cr.Message
	if message == "" {
		message = cr.Description
	}
	description := cr.Description
	if description == "" {
		description = cr.Name
	}
	var kinds []sqlast.StatementKind
	for _, k := range cr.Kinds {
		kind, ok := kindByName(k)
		if !ok {
			return fmt.Errorf("sqlcheck: unknown statement kind %q", k)
		}
		kinds = append(kinds, kind)
	}
	var needs rules.Need
	if cr.NeedsSchema {
		needs |= rules.NeedSchema
	}
	if cr.NeedsProfile {
		needs |= rules.NeedSchema | rules.NeedProfile
	}
	id, name := cr.ID, cr.Name
	guidance := cr.Guidance
	rules.Register(&rules.Rule{
		Meta:        rules.Meta{Kinds: kinds, Needs: needs},
		ID:          id,
		Name:        name,
		Category:    category,
		Description: description,
		Metrics: rules.Metrics{
			ReadPerf: cr.Impact.ReadPerf, WritePerf: cr.Impact.WritePerf,
			Maint: cr.Impact.Maint, DataAmp: cr.Impact.DataAmp,
			Integrity: cr.Impact.Integrity, Accuracy: cr.Impact.Accuracy,
		},
		Flags: rules.ImpactFlags{
			Performance:     cr.Impact.ReadPerf > 0 || cr.Impact.WritePerf > 0,
			Maintainability: cr.Impact.Maint > 0,
			DataAmp:         int(minF(cr.Impact.DataAmp, 1)),
			DataIntegrity:   cr.Impact.Integrity > 0,
			Accuracy:        cr.Impact.Accuracy > 0,
		},
		DetectQuery: func(qi int, f *qanalyze.Facts, ctx *appctx.Context) []rules.Finding {
			if !match(f.Raw) {
				return nil
			}
			table := ""
			if len(f.Tables) > 0 {
				table = f.Tables[0].Name
			}
			return []rules.Finding{{
				RuleID:     id,
				RuleName:   name,
				Category:   category,
				QueryIndex: qi,
				Table:      table,
				Message:    message,
				Confidence: 0.7,
				Detector:   "query",
			}}
		},
	})
	if guidance != "" {
		// The fix engine falls back to per-rule guidance text.
		registerGuidance(id, guidance)
	}
	return nil
}

// customGuidance carries fix text for registered custom rules; the
// Report assembly consults it when the fix engine has no repair rule.
var customGuidance = map[string]string{}

func registerGuidance(id, text string) { customGuidance[id] = text }

// guidanceFor returns custom guidance for a rule ("" if none).
func guidanceFor(id string) string { return customGuidance[id] }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// kindByName resolves a statement-kind spelling ("SELECT", "CREATE
// TABLE", ...) case-insensitively against the catalog's kind names.
func kindByName(name string) (sqlast.StatementKind, bool) {
	for k := sqlast.KindOther; k.Valid(); k++ {
		if strings.EqualFold(name, k.String()) {
			return k, true
		}
	}
	return 0, false
}
