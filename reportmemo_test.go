package sqlcheck

// Integration tests for the fingerprint-keyed serving fast path at
// the public API: hits require byte-identical statement texts (rules
// read literal values, so literal variants must never serve each
// other's reports), layout variants around identical statements do
// hit, and served findings carry spans rebound into the text actually
// submitted.

import (
	"context"
	"encoding/json"
	"testing"
)

// spanSQL has two findings-bearing statements with distinctive texts.
const spanStmt1 = "SELECT * FROM users ORDER BY RAND() LIMIT 5"
const spanStmt2 = "SELECT name FROM users WHERE name LIKE '%smith'"

func checkOne(t *testing.T, c *Checker, w Workload) *Report {
	t.Helper()
	reports, err := c.CheckWorkloads(context.Background(), []Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	return reports[0]
}

func assertSpansLocate(t *testing.T, rep *Report, sql string, wantStmts []string) {
	t.Helper()
	spanned := 0
	for _, f := range rep.Findings {
		if f.Query < 0 {
			if f.Span != nil {
				t.Errorf("schema/data finding %s carries a span", f.Rule)
			}
			continue
		}
		if f.Span == nil {
			t.Errorf("statement finding %s (query %d) has no span", f.Rule, f.Query)
			continue
		}
		spanned++
		s := *f.Span
		if s.Start < 0 || s.End > len(sql) || sql[s.Start:s.End] != wantStmts[f.Query] {
			t.Errorf("finding %s span [%d,%d) does not locate statement %d in the submitted SQL: %q",
				f.Rule, s.Start, s.End, f.Query, sql[max(0, s.Start):min(len(sql), s.End)])
		}
	}
	if spanned == 0 {
		t.Fatal("no statement-level findings to span-check")
	}
}

// TestReportMemoSpansRebind: a layout variant of a cached workload —
// identical statement texts, different whitespace around them — is
// served from the report cache with spans rebound to the submitted
// bytes.
func TestReportMemoSpansRebind(t *testing.T) {
	checker := New()
	stmts := []string{spanStmt1, spanStmt2}

	cold := spanStmt1 + ";\n" + spanStmt2
	repCold := checkOne(t, checker, Workload{SQL: cold})
	assertSpansLocate(t, repCold, cold, stmts)

	// Same statements, radically different layout.
	warm := "\n\n\t " + spanStmt1 + "  ;\n\n\n-- interlude\n" + spanStmt2 + "\n\t"
	preHits := checker.Metrics().ReportCache.Hits
	repWarm := checkOne(t, checker, Workload{SQL: warm})
	if checker.Metrics().ReportCache.Hits == preHits {
		t.Fatal("layout variant with identical statement texts did not hit the report cache")
	}
	assertSpansLocate(t, repWarm, warm, stmts)

	// Hit and miss reports agree on everything except spans.
	strip := func(r *Report) string {
		c := cloneReport(r)
		for i := range c.Findings {
			c.Findings[i].Span = nil
		}
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	if strip(repCold) != strip(repWarm) {
		t.Fatalf("memoized report differs from cold beyond spans\ncold: %s\nwarm: %s", strip(repCold), strip(repWarm))
	}
}

// TestReportMemoLiteralSoundness: literal variants share a fingerprint
// but must never serve each other's reports — the LIKE leading-wildcard
// rule fires on '%smith' and not on 'smith%', so a fingerprint-only
// cache would serve a wrong report in one direction.
func TestReportMemoLiteralSoundness(t *testing.T) {
	checker := New()
	leading := "SELECT name FROM users WHERE name LIKE '%smith'"
	trailing := "SELECT name FROM users WHERE name LIKE 'smith%'"

	repLeading := checkOne(t, checker, Workload{SQL: leading})
	if !repLeading.Has("pattern-matching") {
		t.Fatal("leading-wildcard LIKE did not fire pattern-matching (fixture assumption broken)")
	}
	preVariant := checker.Metrics().ReportCache.VariantMisses
	repTrailing := checkOne(t, checker, Workload{SQL: trailing})
	if repTrailing.Has("pattern-matching") {
		t.Fatal("trailing-wildcard LIKE served the leading-wildcard report: literal variant crossed the cache")
	}
	if checker.Metrics().ReportCache.VariantMisses == preVariant {
		t.Error("literal variant was not counted as a variant miss")
	}

	// Both shapes stay independently memoized and repeat correctly.
	if rep := checkOne(t, checker, Workload{SQL: leading}); !rep.Has("pattern-matching") {
		t.Error("memoized leading-wildcard repeat lost its finding")
	}
	if rep := checkOne(t, checker, Workload{SQL: trailing}); rep.Has("pattern-matching") {
		t.Error("memoized trailing-wildcard repeat gained a wrong finding")
	}
}

// TestReportMemoSharedCache: one NewReportCache serves several
// Checkers with identical configuration, counters and the
// fingerprint-cardinality gauge are visible on both the cache and
// engine metrics, and NoReportCache opts a workload out entirely.
func TestReportMemoSharedCache(t *testing.T) {
	shared := NewReportCache(1 << 20)
	a := New(Options{ReportCache: shared})
	b := New(Options{ReportCache: shared})

	sql := spanStmt1 + ";\n" + spanStmt2
	repA := checkOne(t, a, Workload{SQL: sql})
	repB := checkOne(t, b, Workload{SQL: sql})
	if shared.Stats().Hits == 0 {
		t.Fatalf("checker b did not hit the cache checker a populated: %+v", shared.Stats())
	}
	rawA, _ := json.Marshal(repA)
	rawB, _ := json.Marshal(repB)
	if string(rawA) != string(rawB) {
		t.Fatalf("shared-cache reports differ\na: %s\nb: %s", rawA, rawB)
	}
	st := shared.Stats()
	if st.Entries == 0 || st.Bytes == 0 || st.Fingerprints == 0 {
		t.Errorf("cache stats missing residency: %+v", st)
	}
	if st.Fingerprints > st.Entries {
		t.Errorf("fingerprint cardinality %d exceeds entries %d", st.Fingerprints, st.Entries)
	}
	if em := a.Metrics().ReportCache; em.Hits != st.Hits || em.Fingerprints != st.Fingerprints {
		t.Errorf("engine metrics disagree with cache stats: %+v vs %+v", em, st)
	}

	// Opt-out: a NoReportCache repeat neither hits nor stores.
	before := shared.Stats()
	repOpt := checkOne(t, a, Workload{SQL: sql, NoReportCache: true})
	after := shared.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Entries != before.Entries {
		t.Errorf("NoReportCache workload touched the cache: before %+v after %+v", before, after)
	}
	rawOpt, _ := json.Marshal(repOpt)
	if string(rawOpt) != string(rawA) {
		t.Fatalf("opt-out report differs from memoized report\nopt: %s\nmemo: %s", rawOpt, rawA)
	}

	// Checkers with different ranking configuration must not share
	// reports even on the same cache (scores differ under C2 weights).
	c := New(Options{ReportCache: shared, Weights: Hybrid})
	preHits := shared.Stats().Hits
	checkOne(t, c, Workload{SQL: sql})
	if shared.Stats().Hits != preHits {
		t.Error("checker with different ranking weights hit another configuration's report")
	}
}

// TestReportMemoMutationIsolation: mutating a served report never
// corrupts the cached master.
func TestReportMemoMutationIsolation(t *testing.T) {
	checker := New()
	sql := spanStmt1
	first := checkOne(t, checker, Workload{SQL: sql})
	want, _ := json.Marshal(first)

	// Deface the served copy in place.
	for i := range first.Findings {
		first.Findings[i].Message = "defaced"
		if first.Findings[i].Span != nil {
			first.Findings[i].Span.Start = -1
		}
		for j := range first.Findings[i].Fix.Rewrites {
			first.Findings[i].Fix.Rewrites[j].Fixed = "defaced"
		}
	}
	second := checkOne(t, checker, Workload{SQL: sql})
	got, _ := json.Marshal(second)
	if string(got) != string(want) {
		t.Fatalf("mutating a served report leaked into the cache\nwant: %s\ngot:  %s", want, got)
	}
}
