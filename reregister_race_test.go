package sqlcheck

// Registry re-registration race suite (run under -race by `make
// test`): one goroutine cycles a name through Unregister/Register with
// alternating database contents while checkers resolve workloads
// against it concurrently. The lifecycle invariants under test:
// in-flight batches finish on the handle they admitted with, a
// re-registered name never serves the previous incarnation's memoized
// report (the PR 5/6 cache keys must observe the new origin), and the
// only error a reader may see is ErrUnknownDatabase in the gap between
// unregister and re-register. This is the regression test for serving
// a stale tenant's report after its name is recycled.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// reregFixture builds one of the two alternating database contents.
// Variant A's tags column holds comma-separated lists (the
// multi-valued-attribute data rule fires); variant B's holds atomic
// values (it doesn't). The differing findings are what let the test
// tell a stale report from a fresh one.
func reregFixture(t testing.TB, variant string) *Database {
	t.Helper()
	db := NewDatabase("app")
	db.MustExec(`CREATE TABLE users (id INT PRIMARY KEY, name TEXT, tags TEXT)`)
	for i := 0; i < 40; i++ {
		tags := fmt.Sprintf("T%d,T%d,T%d", i, i+7, i+13)
		if variant == "B" {
			tags = fmt.Sprintf("T%d", i)
		}
		db.MustExec(fmt.Sprintf(
			`INSERT INTO users VALUES (%d, '%s-user-%d', '%s')`, i, variant, i, tags))
	}
	return db
}

func TestReRegistrationRace(t *testing.T) {
	checker := New(Options{Concurrency: 4})
	w := Workload{SQL: `SELECT * FROM users WHERE tags LIKE '%T9%'`, DBName: "app"}

	// Quiesced baselines for both variants, via a throwaway checker so
	// the racing checker's caches start cold.
	baseline := map[string]string{}
	for _, v := range []string{"A", "B"} {
		ref := New(Options{Concurrency: 4})
		if err := ref.RegisterDatabase("app", reregFixture(t, v)); err != nil {
			t.Fatal(err)
		}
		baseline[v] = string(reportJSON(t, ref, w))
	}
	if baseline["A"] == baseline["B"] {
		t.Fatal("fixture variants produced identical reports; the race would be vacuous")
	}

	if err := checker.RegisterDatabase("app", reregFixture(t, "A")); err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 4
		perReader = 8
	)
	var (
		stop    atomic.Bool
		served  atomic.Int64
		misses  atomic.Int64
		cycles  int
		wg      sync.WaitGroup
		readWg  sync.WaitGroup
		errc    = make(chan error, readers+1)
		variant = func(i int) string {
			if i%2 == 0 {
				return "B"
			}
			return "A"
		}
	)

	// Pre-build both incarnations so the unregister→register gap is as
	// narrow as the registry itself, not fixture-construction time. The
	// handles alternate for as long as the readers keep reading.
	incarnations := []*Database{reregFixture(t, "B"), reregFixture(t, "A")}

	// The cycler: tear the name down and put it back with the other
	// contents, as fast as the registry allows, until the readers are
	// done.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if !checker.UnregisterDatabase("app") {
				errc <- fmt.Errorf("cycle %d: name vanished before unregister", i)
				return
			}
			if err := checker.RegisterDatabase("app", incarnations[i%2]); err != nil {
				errc <- fmt.Errorf("cycle %d: re-register: %v", i, err)
				return
			}
			cycles = i + 1
		}
	}()

	// Readers: resolve by name throughout the churn. Any served report
	// must byte-equal one of the two quiesced baselines — a third value
	// would be a torn registration or a stale memoized report leaking
	// across incarnations.
	for g := 0; g < readers; g++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			// Loop until perReader reports were actually served: a miss
			// (the unregister/re-register gap) doesn't count, so the
			// serving path is guaranteed to be exercised every run.
			for ok := 0; ok < perReader; {
				reports, err := checker.CheckWorkloads(context.Background(), []Workload{w})
				if err != nil {
					if errors.Is(err, ErrUnknownDatabase) {
						misses.Add(1)
						continue
					}
					errc <- err
					return
				}
				ok++
				raw, err := json.Marshal(reports[0])
				if err != nil {
					errc <- err
					return
				}
				if got := string(raw); got != baseline["A"] && got != baseline["B"] {
					errc <- fmt.Errorf("served report matches neither incarnation:\n%s", got)
					return
				}
				served.Add(1)
			}
		}()
	}
	readWg.Wait()
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no reports served during the churn; race never exercised")
	}
	if cycles == 0 {
		t.Fatal("no re-registration cycles completed during the churn")
	}
	t.Logf("served %d reports (%d unknown-database misses) across %d re-registration cycles",
		served.Load(), misses.Load(), cycles)

	// Quiesced coda: the final incarnation serves its own baseline, not
	// whatever the report cache held for the name before the last cycle.
	final := string(reportJSON(t, checker, w))
	if want := baseline[variant(cycles-1)]; final != want {
		t.Fatalf("post-churn report is not the final incarnation's baseline\ngot:  %s\nwant: %s", final, want)
	}
}
