package sqlcheck

// The report-memoization invalidation suite (run under -race by
// `make test`): writers hammer a registered database with concurrent
// DML — every statement bumps the database-state version under the
// single-writer lock — while readers repeatedly analyze snapshots
// through a warm report cache. The invariant: a report served from
// the memoized fast path is byte-identical to the report a completely
// cold checker computes over the same visible rows. Reports are keyed
// by (database origin ID, state version), and versions advance
// monotonically, so a hit at any point in the churn proves the stored
// report was computed over exactly the rows the reader's snapshot
// froze — if invalidation ever lagged a write, the byte comparison
// fails.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestReportCacheInvalidationUnderConcurrentDML(t *testing.T) {
	db := raceFixtureDB(t)
	checker := New(Options{Concurrency: 4})
	if err := checker.RegisterDatabase("app", db); err != nil {
		t.Fatal(err)
	}
	workload := Workload{SQL: raceWorkloadSQL, DBName: "app"}

	// Cold store, then a quiet byte-identical repeat through the fast
	// path before the churn starts.
	baseline := reportJSON(t, checker, workload)
	preHits := checker.Metrics().ReportCache.Hits
	if repeat := reportJSON(t, checker, workload); string(repeat) != string(baseline) {
		t.Fatalf("pre-churn repeat differs from its own baseline\nfirst:  %s\nsecond: %s", baseline, repeat)
	}
	if checker.Metrics().ReportCache.Hits == preHits {
		t.Fatal("pre-churn repeat did not hit the report cache")
	}

	const (
		writers      = 4
		opsPerWriter = 80
		readers      = 4
		checksPerR   = 6
	)

	type observed struct {
		snap   *Database
		report []byte
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen []observed
		errc = make(chan error, writers*opsPerWriter+readers)
	)

	// Writers: every INSERT/DELETE bumps the database version, moving
	// the report-cache key, so reader batches span many distinct keys.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				id := 300000 + g*1000 + i
				if _, err := db.Exec(fmt.Sprintf(
					`INSERT INTO users VALUES (%d, 'churn-%d', 'user', 'transient row')`, id, id)); err != nil {
					errc <- err
					return
				}
				if i%2 == 0 {
					if _, err := db.Exec(fmt.Sprintf(`DELETE FROM users WHERE id = %d`, id)); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	// Readers: snapshot mid-churn and analyze the snapshot through the
	// shared checker. Snapshots keep the origin's (ID, version), so two
	// readers landing on the same version may serve each other's stored
	// reports — the byte comparison below proves any such hit was
	// sound.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < checksPerR; i++ {
				snap := db.Snapshot()
				reports, err := checker.CheckWorkloads(context.Background(),
					[]Workload{{SQL: raceWorkloadSQL, DB: snap}})
				if err != nil {
					errc <- err
					return
				}
				raw, err := json.Marshal(reports[0])
				if err != nil {
					errc <- err
					return
				}
				mu.Lock()
				seen = append(seen, observed{snap: snap, report: raw})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Cold-baseline equality: every mid-churn report — memoized or not
	// — must match a completely cold checker analyzing the same visible
	// rows materialized into a fresh database.
	if len(seen) != readers*checksPerR {
		t.Fatalf("observed %d snapshots, want %d", len(seen), readers*checksPerR)
	}
	for i, obs := range seen {
		cold := New(Options{Concurrency: 4})
		quiesced := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, obs.snap)})
		if string(obs.report) != string(quiesced) {
			t.Fatalf("snapshot %d: memoization-eligible report differs from cold baseline\nwarm: %s\ncold: %s",
				i, obs.report, quiesced)
		}
	}

	// The cache saw real traffic: version churn produced misses, and
	// repeats (pre-churn at minimum) produced hits.
	rc := checker.Metrics().ReportCache
	if rc.Hits == 0 || rc.Misses == 0 {
		t.Errorf("expected both hits and misses under churn, got %+v", rc)
	}

	// Quiesced: a repeat serves from the report cache byte-identically;
	// then a single DML moves the version and must bust it — the next
	// check misses and still matches a cold checker over the new state.
	first := reportJSON(t, checker, workload)
	preHits = checker.Metrics().ReportCache.Hits
	second := reportJSON(t, checker, workload)
	if string(first) != string(second) {
		t.Fatal("quiesced repeat reports differ")
	}
	if checker.Metrics().ReportCache.Hits == preHits {
		t.Error("quiesced repeat did not hit the report cache")
	}
	if _, err := db.Exec(`INSERT INTO users VALUES (999999, 'bust', 'user', 'version bump')`); err != nil {
		t.Fatal(err)
	}
	preMisses := checker.Metrics().ReportCache.Misses
	busted := reportJSON(t, checker, workload)
	if checker.Metrics().ReportCache.Misses == preMisses {
		t.Error("post-DML check did not miss the report cache (stale serve)")
	}
	cold := New(Options{Concurrency: 4})
	coldFinal := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, db.Snapshot())})
	if string(busted) != string(coldFinal) {
		t.Fatalf("post-DML report differs from cold checker\nwarm: %s\ncold: %s", busted, coldFinal)
	}
}
