package sqlcheck

// The larger-than-RAM capacity gate, run by the CI bounded-rss job
// with SQLCHECK_BOUNDED_RSS=1 (and a GOMEMLIMIT well below the
// fixture total): a registry loaded with several times its page-cache
// budget of fixture data must stay within a bounded peak RSS while
// every tenant still analyzes byte-identically to an all-resident
// baseline. Without spilling, the fixture data alone exceeds the RSS
// ceiling, so the test fails structurally — not flakily — if pages
// stop leaving the heap.

import (
	"fmt"
	"os"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"testing"

	"sqlcheck/internal/storage"
)

const (
	// rssTenants × rssRowsPerTenant rows of ~rssPayload bytes ≈ 8 MiB
	// of row data per tenant, ~128 MiB total — 8× the page-cache
	// budget below and well above the RSS ceiling.
	rssTenants       = 16
	rssRowsPerTenant = 8192
	rssBudget        = 16 << 20
	// rssCeilingMB bounds VmHWM: page-cache budget plus the Go
	// runtime, the test binary, the golden corpus pass, and GC lag
	// from building each tenant before it spills. The all-resident
	// failure mode peaks past the fixture total (~190 MiB measured),
	// so the ceiling separates the two regimes with margin on both
	// sides.
	rssCeilingMB = 120
)

// rssTenantDB builds one tenant's database at the storage layer
// (bypassing SQL parsing — fixture construction is not under test).
// Every tenant is identical, so one all-resident copy is the
// byte-equality baseline for all sixteen.
func rssTenantDB(name string) *Database {
	db := NewDatabase(name)
	db.MustExec(`CREATE TABLE users (id INT PRIMARY KEY, name TEXT, role TEXT, bio TEXT)`)
	db.MustExec(`CREATE INDEX users_role ON users (role)`)
	tab := db.inner.Table("users")
	roles := []string{"admin", "user", "user", "user"}
	pad := strings.Repeat("larger-than-ram payload ", 40) // ~960 B
	for i := 0; i < rssRowsPerTenant; i++ {
		tab.MustInsert(storage.Int(int64(i)),
			storage.Str(fmt.Sprintf("user-%d", i)),
			storage.Str(roles[i%len(roles)]),
			storage.Str(fmt.Sprintf("writes go and sql no %d %s", i, pad)))
	}
	return db
}

// vmHWM reads the process's peak resident set size from
// /proc/self/status, in KiB.
func vmHWM(t *testing.T) int64 {
	t.Helper()
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status on this platform: %v", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("parsing VmHWM %q: %v", line, err)
			}
			return kb
		}
	}
	t.Fatal("VmHWM not found in /proc/self/status")
	return 0
}

func TestBoundedRSSLargerThanRAMRegistry(t *testing.T) {
	if os.Getenv("SQLCHECK_BOUNDED_RSS") == "" {
		t.Skip("set SQLCHECK_BOUNDED_RSS=1 to run the capacity gate (loads ~128 MiB of fixtures)")
	}
	if os.Getenv("GOMEMLIMIT") == "" {
		// The CI job sets GOMEMLIMIT; standalone runs get an equivalent
		// soft limit so GC keeps up with tenant-build churn.
		debug.SetMemoryLimit(96 << 20)
	}

	// All-resident baseline from a single tenant copy: every tenant is
	// identical, so one report keys the byte-equality check for all.
	cold := New(Options{Concurrency: 2})
	baselineDB := rssTenantDB("baseline")
	baseline := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: baselineDB})
	baselineDB = nil
	_ = baselineDB

	checker := New(Options{Concurrency: 2, PageCacheBytes: rssBudget})
	t.Cleanup(func() { checker.Close() })

	// Build and register tenant by tenant: adoption spills each one
	// down to the shared budget before the next is built, so the peak
	// never holds more than one tenant plus the budget.
	for i := 0; i < rssTenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if err := checker.RegisterDatabase(name, rssTenantDB(name)); err != nil {
			t.Fatal(err)
		}
	}
	pc := checker.Metrics().PageCache
	if pc == nil || pc.SpilledPages == 0 {
		t.Fatalf("registry under budget pressure must hold spilled pages: %+v", pc)
	}
	if pc.SpillErrors != 0 {
		t.Fatalf("spill writes failed: %+v", pc)
	}
	t.Logf("after load: %d pages spilled, %d resident bytes (budget %d), %d spill bytes on disk",
		pc.SpilledPages, pc.ResidentBytes, pc.BudgetBytes, pc.SpillBytes)

	// Every tenant analyzes byte-identically to the all-resident
	// baseline, faulting its pages through the shared budget.
	for i := 0; i < rssTenants; i++ {
		got := reportJSON(t, checker, Workload{SQL: raceWorkloadSQL, DBName: fmt.Sprintf("tenant-%d", i)})
		if string(got) != string(baseline) {
			t.Fatalf("tenant-%d: spill-managed report differs from all-resident baseline\nspill:    %s\nresident: %s",
				i, got, baseline)
		}
	}

	// The golden corpus still passes under the same memory pressure.
	names, ws := goldenWorkloads(t)
	coldReports, err := cold.CheckWorkloads(t.Context(), ws)
	if err != nil {
		t.Fatal(err)
	}
	pressured, err := checker.CheckWorkloads(t.Context(), ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coldReports {
		var want, got []string
		for _, f := range coldReports[i].Findings {
			want = append(want, findingKey(f))
		}
		for _, f := range pressured[i].Findings {
			got = append(got, findingKey(f))
		}
		if !slices.Equal(got, want) {
			t.Errorf("%s: findings differ under memory pressure\ngot:  %v\nwant: %v", names[i], got, want)
		}
	}

	if peakKB := vmHWM(t); peakKB > rssCeilingMB<<10 {
		t.Fatalf("peak RSS %d MiB exceeds the %d MiB ceiling (budget %d MiB + slack): pages are not leaving the heap",
			peakKB>>10, rssCeilingMB, rssBudget>>20)
	} else {
		t.Logf("peak RSS %d MiB (ceiling %d MiB, page-cache budget %d MiB)", peakKB>>10, rssCeilingMB, rssBudget>>20)
	}
}
