package sqlcheck_test

// Runnable godoc examples for the public API: the one-call entry
// point, the three process-shareable caches, batch workloads, and the
// sentinel errors. `go test` executes every example and compares its
// printed output, so these stay correct by construction.

import (
	"context"
	"errors"
	"fmt"

	"sqlcheck"
)

// The one-call entry point: analyze a script, print the ranked rules.
func Example() {
	report, err := sqlcheck.New().CheckSQL(`
		CREATE TABLE t (id INT PRIMARY KEY, total FLOAT);
		SELECT * FROM t ORDER BY RAND() LIMIT 5;
	`)
	if err != nil {
		panic(err)
	}
	for _, f := range report.Findings {
		fmt.Println(f.Rule)
	}
	// Output:
	// order-by-rand
	// column-wildcard
	// rounding-errors
	// generic-primary-key
}

// Share one parse cache across Checkers: the second Checker's check
// reuses the first's parsed statements.
func ExampleNewCache() {
	cache := sqlcheck.NewCache(8 << 20)
	a := sqlcheck.New(sqlcheck.Options{SharedCache: cache})
	b := sqlcheck.New(sqlcheck.Options{SharedCache: cache})

	sql := "SELECT * FROM t ORDER BY RAND()"
	if _, err := a.CheckSQL(sql); err != nil {
		panic(err)
	}
	if _, err := b.CheckSQL(sql); err != nil {
		panic(err)
	}
	fmt.Println("parse cache hits > 0:", cache.Stats().Hits > 0)
	// Output:
	// parse cache hits > 0: true
}

// Share one profile cache: a registered database re-checks without
// re-profiling until DML moves its version. The repeat opts out of
// report memoization so the pipeline (and therefore the profile
// lookup) actually runs.
func ExampleNewProfileCache() {
	profiles := sqlcheck.NewProfileCache(8 << 20)
	checker := sqlcheck.New(sqlcheck.Options{ProfileCache: profiles})

	db := sqlcheck.NewDatabase("app")
	db.MustExec("CREATE TABLE tenants (id INT PRIMARY KEY, user_ids TEXT)")
	db.MustExec("INSERT INTO tenants (id, user_ids) VALUES (1, 'U1,U2,U3')")
	if err := checker.RegisterDatabase("app", db); err != nil {
		panic(err)
	}

	w := sqlcheck.Workload{SQL: "SELECT user_ids FROM tenants", DBName: "app", NoReportCache: true}
	ctx := context.Background()
	if _, err := checker.CheckWorkloads(ctx, []sqlcheck.Workload{w}); err != nil {
		panic(err)
	}
	if _, err := checker.CheckWorkloads(ctx, []sqlcheck.Workload{w}); err != nil {
		panic(err)
	}
	fmt.Println("profile cache hits > 0:", profiles.Stats().Hits > 0)
	// Output:
	// profile cache hits > 0: true
}

// The serving fast path: a repeated workload is a report-cache hit —
// served without parsing, profiling, or rule evaluation — and stays
// byte-equivalent to a cold analysis.
func ExampleNewReportCache() {
	reports := sqlcheck.NewReportCache(16 << 20)
	checker := sqlcheck.New(sqlcheck.Options{ReportCache: reports})

	sql := "SELECT name FROM users WHERE name LIKE '%smith'"
	first, err := checker.CheckSQL(sql)
	if err != nil {
		panic(err)
	}
	second, err := checker.CheckSQL(sql) // identical bytes: memoized
	if err != nil {
		panic(err)
	}
	st := reports.Stats()
	fmt.Println("hits:", st.Hits, "misses:", st.Misses, "fingerprints:", st.Fingerprints)
	fmt.Println("same findings:", len(first.Findings) == len(second.Findings))

	// Same query shape with a different literal shares a fingerprint
	// but NOT a report: rules read literal values, so only
	// byte-identical statements serve from the cache.
	if _, err := checker.CheckSQL("SELECT name FROM users WHERE name LIKE 'smith%'"); err != nil {
		panic(err)
	}
	fmt.Println("variant misses:", reports.Stats().VariantMisses)
	// Output:
	// hits: 1 misses: 1 fingerprints: 1
	// same findings: true
	// variant misses: 1
}

// Duplicate-heavy batches coalesce: one pipeline run per distinct
// report identity, fanned out to every duplicate with byte-identical
// results. Options.NoCoalesce opts out — the same reports, but one
// pipeline run per workload.
func ExampleOptions_noCoalesce() {
	batch := make([]sqlcheck.Workload, 4)
	for i := range batch {
		batch[i] = sqlcheck.Workload{SQL: "SELECT * FROM t ORDER BY RAND()"}
	}
	ctx := context.Background()

	coalescing := sqlcheck.New()
	if _, err := coalescing.CheckWorkloads(ctx, batch); err != nil {
		panic(err)
	}
	fmt.Println("duplicates coalesced:", coalescing.Metrics().Coalesce.InBatch)

	cold := sqlcheck.New(sqlcheck.Options{NoCoalesce: true})
	if _, err := cold.CheckWorkloads(ctx, batch); err != nil {
		panic(err)
	}
	fmt.Println("with NoCoalesce:", cold.Metrics().Coalesce.InBatch)
	// Output:
	// duplicates coalesced: 3
	// with NoCoalesce: 0
}

// Batched workloads: findings carry spans into the submitted script.
func ExampleChecker_CheckWorkloads() {
	checker := sqlcheck.New()
	sql := "SELECT * FROM t;\nSELECT id FROM t ORDER BY RAND()"
	reports, err := checker.CheckWorkloads(context.Background(),
		[]sqlcheck.Workload{{SQL: sql}})
	if err != nil {
		panic(err)
	}
	for _, f := range reports[0].Findings {
		if f.Span != nil {
			fmt.Printf("%s line %d: %s\n", f.Rule, f.Span.Line, sql[f.Span.Start:f.Span.End])
		}
	}
	// Output:
	// order-by-rand line 2: SELECT id FROM t ORDER BY RAND()
	// column-wildcard line 1: SELECT * FROM t
}

// ErrUnknownRule fails a check whose rule filter names an ID that is
// not in the catalog; match it with errors.Is.
func ExampleErrUnknownRule() {
	checker := sqlcheck.New(sqlcheck.Options{Rules: []string{"no-such-rule"}})
	_, err := checker.CheckSQL("SELECT 1")
	fmt.Println(errors.Is(err, sqlcheck.ErrUnknownRule))
	// Output:
	// true
}

// ErrUnknownDatabase fails a batch referencing an unregistered
// database name.
func ExampleErrUnknownDatabase() {
	checker := sqlcheck.New()
	_, err := checker.CheckWorkloads(context.Background(),
		[]sqlcheck.Workload{{SQL: "SELECT 1", DBName: "missing"}})
	fmt.Println(errors.Is(err, sqlcheck.ErrUnknownDatabase))
	// Output:
	// true
}
