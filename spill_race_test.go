package sqlcheck

// The spill-churn suite (run under -race by `make test`): a Checker
// whose page-cache budget is far below the registered fixture's
// working set serves concurrent workloads while writers hammer the
// live handle — so eviction, spill-out, fault-in, and COW frame
// copies race snapshot scans and the profiler continuously. The
// invariant is the tentpole's contract: spilling moves pages, never
// changes analysis results, so every mid-churn report must be
// byte-identical to the report a cold, all-resident checker computes
// over the same visible rows.

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"sync"
	"testing"
)

// spillScaled shrinks fixture sizes under -short (the CI race run).
func spillScaled(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// spillRaceFixtureDB builds a string-heavy fixture several times the
// spill budget used by the tests below, so registration immediately
// spills and every profiling pass faults pages back in.
func spillRaceFixtureDB(t testing.TB, n int) *Database {
	t.Helper()
	db := NewDatabase("app")
	db.MustExec(`CREATE TABLE users (id INT PRIMARY KEY, name TEXT, role TEXT, bio TEXT)`)
	db.MustExec(`CREATE INDEX users_role ON users (role)`)
	roles := []string{"admin", "user", "user", "user"}
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf(
			`INSERT INTO users VALUES (%d, 'user-%d', '%s', 'writes go and sql no %d %s')`,
			i, i, roles[i%len(roles)], i, strings.Repeat("padding ", 8)))
	}
	return db
}

func TestSpillRegistryConcurrentDMLByteEquality(t *testing.T) {
	n := spillScaled(2000, 800)
	db := spillRaceFixtureDB(t, n)
	// The budget is far below the fixture's resident bytes, so the
	// registry operates spill-first from registration onward.
	checker := New(Options{Concurrency: 4, PageCacheBytes: 64 << 10})
	t.Cleanup(func() { checker.Close() })
	if err := checker.RegisterDatabase("app", db); err != nil {
		t.Fatal(err)
	}
	if pc := checker.Metrics().PageCache; pc == nil || pc.Spills == 0 {
		t.Fatalf("registration under a tiny budget must spill, stats %+v", pc)
	}

	const (
		writers      = 4
		opsPerWriter = 60
		readers      = 4
		checksPerR   = 5
	)
	type observed struct {
		snap   *Database
		report []byte
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen []observed
		errc = make(chan error, writers*opsPerWriter+readers)
	)

	// Writers: INSERT/UPDATE/DELETE on spill-managed pages — updates
	// fault shared frames back in and copy them, deletes punch slots
	// that the next spill-out compacts away.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				id := 300000 + g*1000 + i
				if _, err := db.Exec(fmt.Sprintf(
					`INSERT INTO users VALUES (%d, 'churn-%d', 'user', 'transient row')`, id, id)); err != nil {
					errc <- err
					return
				}
				switch i % 3 {
				case 0:
					if _, err := db.Exec(fmt.Sprintf(`DELETE FROM users WHERE id = %d`, id)); err != nil {
						errc <- err
						return
					}
				case 1:
					if _, err := db.Exec(fmt.Sprintf(
						`UPDATE users SET bio = 'rewritten %d' WHERE id = %d`, id, g*7+i)); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	// Readers: analyze mid-churn snapshots through the spill-managed
	// checker. Each scan pins pages as it walks them and faults in
	// whatever the writers' churn evicted.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < checksPerR; i++ {
				snap := db.Snapshot()
				reports, err := checker.CheckWorkloads(context.Background(),
					[]Workload{{SQL: raceWorkloadSQL, DB: snap}})
				if err != nil {
					errc <- err
					return
				}
				raw, err := json.Marshal(reports[0])
				if err != nil {
					errc <- err
					return
				}
				mu.Lock()
				seen = append(seen, observed{snap: snap, report: raw})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every mid-churn report must match a cold, all-resident checker
	// (no page cache at all) over the same visible rows.
	if len(seen) != readers*checksPerR {
		t.Fatalf("observed %d snapshots, want %d", len(seen), readers*checksPerR)
	}
	for i, obs := range seen {
		cold := New(Options{Concurrency: 4})
		resident := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, obs.snap)})
		if string(obs.report) != string(resident) {
			t.Fatalf("snapshot %d: spill-managed report differs from all-resident baseline\nspill:    %s\nresident: %s",
				i, obs.report, resident)
		}
	}

	// The churn exercised the whole frame lifecycle, and parked frames
	// (spill errors) never appeared.
	pc := checker.Metrics().PageCache
	if pc.Faults == 0 || pc.Evictions == 0 || pc.Spills == 0 {
		t.Errorf("spill churn left lifecycle counters idle: %+v", pc)
	}
	if pc.SpillErrors != 0 {
		t.Errorf("spill writes failed during churn: %+v", pc)
	}

	// Quiesced: the registered handle itself still matches the
	// all-resident baseline after all the eviction churn.
	final := reportJSON(t, checker, Workload{SQL: raceWorkloadSQL, DBName: "app"})
	cold := New(Options{Concurrency: 4})
	coldFinal := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, db.Snapshot())})
	if string(final) != string(coldFinal) {
		t.Fatalf("quiesced spill-managed report differs from all-resident baseline\nspill:    %s\nresident: %s",
			final, coldFinal)
	}
}

// TestGoldenCorpusUnderSpill runs the golden corpus with every
// database-attached workload registered into a checker whose page
// cache is far below the corpus working set: findings must be
// identical to the all-resident cold run, with real spill traffic.
func TestGoldenCorpusUnderSpill(t *testing.T) {
	names, ws := goldenWorkloads(t)

	// All-resident baseline on a plain checker.
	cold := New()
	coldReports, err := cold.CheckWorkloads(t.Context(), ws)
	if err != nil {
		t.Fatal(err)
	}

	// Spill checker: register every attached database so it falls
	// under page-cache management, and resolve it by name.
	spill := New(Options{PageCacheBytes: 128 << 10})
	t.Cleanup(func() { spill.Close() })
	spillWS := make([]Workload, len(ws))
	copy(spillWS, ws)
	for i := range spillWS {
		if spillWS[i].DB == nil {
			continue
		}
		name := fmt.Sprintf("spill-%d", i)
		if err := spill.RegisterDatabase(name, spillWS[i].DB); err != nil {
			t.Fatal(err)
		}
		spillWS[i].DB = nil
		spillWS[i].DBName = name
	}
	spillReports, err := spill.CheckWorkloads(t.Context(), spillWS)
	if err != nil {
		t.Fatal(err)
	}

	for i := range coldReports {
		var want, got []string
		for _, f := range coldReports[i].Findings {
			want = append(want, findingKey(f))
		}
		for _, f := range spillReports[i].Findings {
			got = append(got, findingKey(f))
		}
		if !slices.Equal(got, want) {
			t.Errorf("%s: findings differ under spill\nspill:    %v\nresident: %v", names[i], got, want)
		}
	}

	pc := spill.Metrics().PageCache
	if pc == nil || pc.Spills == 0 || pc.Faults == 0 {
		t.Fatalf("golden corpus did not exercise the spill path: %+v", pc)
	}
	if pc.SpillErrors != 0 {
		t.Errorf("spill writes failed: %+v", pc)
	}
}
