package sqlcheck

// The coalescing transparency suite (run under -race by `make test`):
// batch statement coalescing and the cold-miss singleflight must be
// invisible in output — a workload served by a same-batch leader or
// merged onto a concurrent identical analysis returns a report
// byte-identical to the one a completely cold, uncoalesced checker
// computes. The golden test pins that over corpus-shaped batches
// (including the duplicate-heavy shape coalescing exists for); the
// concurrent test hammers one cold key from many goroutines so the
// race detector sees the flight registry's locking and the shared
// result fan-out.

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"sqlcheck/internal/corpus"
)

// coalesceGoldenBatch builds a duplicate-heavy corpus batch: `unique`
// distinct repo scripts, each repeated `repeat` times consecutively,
// salted so repeated test runs against one checker never hit the
// report cache instead of coalescing.
func coalesceGoldenBatch(unique, repeat, salt int) []Workload {
	c := corpus.GitHub(corpus.GitHubOptions{Repos: unique, Seed: 7})
	ws := make([]Workload, 0, unique*repeat)
	for u, r := range c.Repos {
		stmts := r.Statements
		if len(stmts) > 10 {
			stmts = stmts[:10]
		}
		sql := fmt.Sprintf("%s;\nSELECT 'salt-%d-%d' FROM generated",
			strings.Join(stmts, ";\n"), u, salt)
		for i := 0; i < repeat; i++ {
			ws = append(ws, Workload{SQL: sql})
		}
	}
	return ws
}

// TestCoalesceGolden: a duplicate-heavy corpus batch produces
// byte-identical reports coalesced and uncoalesced, for SQL-only and
// database-attached workloads, and the coalesced run actually
// coalesced (the duplicates never ran the pipeline).
func TestCoalesceGolden(t *testing.T) {
	const unique, repeat = 6, 8

	warm := New(Options{Concurrency: 4})
	cold := New(Options{Concurrency: 4, NoCoalesce: true})

	batch := coalesceGoldenBatch(unique, repeat, 1)
	// The cold side also defeats report memoization per workload, so
	// every duplicate pays the full pipeline — the from-scratch
	// baseline the coalesced reports must match.
	coldBatch := make([]Workload, len(batch))
	for i, w := range batch {
		w.NoReportCache = true
		coldBatch[i] = w
	}

	warmReports, err := warm.CheckWorkloads(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	coldReports, err := cold.CheckWorkloads(context.Background(), coldBatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(warmReports) != len(coldReports) {
		t.Fatalf("report counts differ: %d vs %d", len(warmReports), len(coldReports))
	}
	for i := range warmReports {
		w, err := json.Marshal(warmReports[i])
		if err != nil {
			t.Fatal(err)
		}
		c, err := json.Marshal(coldReports[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(w) != string(c) {
			t.Fatalf("workload %d: coalesced report differs from cold uncoalesced baseline\ncoalesced: %s\ncold:      %s", i, w, c)
		}
	}

	// Accounting: each of the `unique` scripts ran once; the other
	// repeat-1 copies were in-batch coalesces.
	if got, want := warm.Metrics().Coalesce.InBatch, int64(unique*(repeat-1)); got != want {
		t.Errorf("InBatch = %d, want %d", got, want)
	}
	if got := cold.Metrics().Coalesce; got.InBatch != 0 || got.Singleflight != 0 {
		t.Errorf("NoCoalesce checker coalesced anyway: %+v", got)
	}

	// Database-attached duplicates coalesce too: same invariant against
	// a registered fixture database.
	db := raceFixtureDB(t)
	for _, c := range []*Checker{warm, cold} {
		if err := c.RegisterDatabase("app", db); err != nil {
			t.Fatal(err)
		}
	}
	dbBatch := make([]Workload, repeat)
	for i := range dbBatch {
		dbBatch[i] = Workload{SQL: raceWorkloadSQL, DBName: "app"}
	}
	warmDB, err := warm.CheckWorkloads(context.Background(), dbBatch)
	if err != nil {
		t.Fatal(err)
	}
	coldDBBatch := make([]Workload, repeat)
	for i := range coldDBBatch {
		coldDBBatch[i] = Workload{SQL: raceWorkloadSQL, DBName: "app", NoReportCache: true}
	}
	coldDB, err := cold.CheckWorkloads(context.Background(), coldDBBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warmDB {
		w, _ := json.Marshal(warmDB[i])
		c, _ := json.Marshal(coldDB[i])
		if string(w) != string(c) {
			t.Fatalf("db workload %d: coalesced report differs from cold baseline\ncoalesced: %s\ncold:      %s", i, w, c)
		}
	}

	// NoReportCache workloads must never coalesce — their contract is a
	// from-scratch run even for byte-identical repeats in one batch.
	pre := warm.Metrics().Coalesce.InBatch
	optOut := []Workload{
		{SQL: "SELECT * FROM t ORDER BY RAND()", NoReportCache: true},
		{SQL: "SELECT * FROM t ORDER BY RAND()", NoReportCache: true},
	}
	if _, err := warm.CheckWorkloads(context.Background(), optOut); err != nil {
		t.Fatal(err)
	}
	if got := warm.Metrics().Coalesce.InBatch; got != pre {
		t.Errorf("NoReportCache duplicates coalesced (InBatch %d -> %d)", pre, got)
	}
}

// TestCoalesceSingleflightConcurrent hammers one cold report identity
// from many goroutines in separate batches: the flight registry must
// merge the stampede onto one pipeline run without a data race, and
// every merged caller must receive a report byte-identical to the
// leader's.
func TestCoalesceSingleflightConcurrent(t *testing.T) {
	const rounds, callers = 12, 8
	checker := New(Options{Concurrency: 4})
	merged := int64(0)

	for round := 0; round < rounds; round++ {
		// Rounds differ structurally (distinct table identifiers), not
		// just by literal: fingerprinting collapses literal variants
		// onto one bucket bounded by the cache's variant policy, and a
		// declined store would legitimately let a late caller re-run —
		// the exact accounting below is only a valid invariant when
		// every round's store is admitted.
		sql := fmt.Sprintf(
			"SELECT * FROM orders_%d WHERE batch = 'round-%d' ORDER BY RAND();\nSELECT name FROM users_%d u JOIN teams t ON u.team_id = t.id WHERE t.tag = 'r%d'",
			round, round, round, round)
		var (
			wg      sync.WaitGroup
			start   = make(chan struct{})
			reports [callers][]byte
			errs    [callers]error
		)
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				rs, err := checker.CheckWorkloads(context.Background(),
					[]Workload{{SQL: sql}})
				if err != nil {
					errs[g] = err
					return
				}
				reports[g], errs[g] = json.Marshal(rs[0])
			}(g)
		}
		close(start) // release the stampede
		wg.Wait()
		for g := 0; g < callers; g++ {
			if errs[g] != nil {
				t.Fatal(errs[g])
			}
			if string(reports[g]) != string(reports[0]) {
				t.Fatalf("round %d: caller %d report differs from caller 0\n0: %s\n%d: %s",
					round, g, reports[0], g, reports[g])
			}
		}
		// Cold-baseline equality for the round's shared report.
		coldRep, err := New(Options{NoCoalesce: true}).CheckWorkloads(context.Background(),
			[]Workload{{SQL: sql, NoReportCache: true}})
		if err != nil {
			t.Fatal(err)
		}
		coldRaw, _ := json.Marshal(coldRep[0])
		if string(reports[0]) != string(coldRaw) {
			t.Fatalf("round %d: stampede report differs from cold baseline\nwarm: %s\ncold: %s",
				round, reports[0], coldRaw)
		}
	}

	m := checker.Metrics()
	merged = m.Coalesce.Singleflight + m.ReportCache.Hits
	// Every round ran callers batches over one identity: exactly one
	// leader per identity, everyone else merged in flight or was served
	// the stored report after the leader finished.
	if want := int64(rounds * (callers - 1)); merged != want {
		t.Errorf("singleflight (%d) + cache hits (%d) = %d, want %d — some callers re-ran a concurrent identical analysis",
			m.Coalesce.Singleflight, m.ReportCache.Hits, merged, want)
	}
	t.Logf("stampede absorption: %d singleflight merges, %d report-cache hits over %d rounds x %d callers (GOMAXPROCS=%d)",
		m.Coalesce.Singleflight, m.ReportCache.Hits, rounds, callers, runtime.GOMAXPROCS(0))
}
