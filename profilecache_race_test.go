package sqlcheck

// The profile-memoization invalidation suite (run under -race by
// `make test`): writers hammer a registered database with concurrent
// INSERT/DELETE statements — every statement bumps the mutated
// table's version under the single-writer lock — while readers
// repeatedly analyze snapshots through a warm profile cache. The
// invariant: a report served (partly or wholly) from memoized
// profiles is byte-identical to the report a completely cold checker
// computes over the same visible rows materialized into a fresh
// database. If a stale profile were ever served across a version
// bump, or a cache entry raced a writer, the byte comparison fails.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestProfileCacheInvalidationUnderConcurrentDML(t *testing.T) {
	db := raceFixtureDB(t)
	checker := New(Options{Concurrency: 4})
	if err := checker.RegisterDatabase("app", db); err != nil {
		t.Fatal(err)
	}
	// Opt out of report memoization throughout: this suite pins the
	// profile cache specifically, and a report-cache hit would skip
	// profiling entirely (reportcache_race_test.go covers that path).
	workload := Workload{SQL: raceWorkloadSQL, DBName: "app", NoReportCache: true}

	// Warm the cache before the churn starts.
	baseline := reportJSON(t, checker, workload)

	const (
		writers      = 4
		opsPerWriter = 80
		readers      = 4
		checksPerR   = 6
	)

	type observed struct {
		snap   *Database
		report []byte
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen []observed
		errc = make(chan error, writers*opsPerWriter+readers)
	)

	// Writers: unbalanced churn — inserts and deletes of disjoint id
	// ranges — so reader batches observe genuinely different versions
	// (and therefore different cache keys) throughout the run.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				id := 200000 + g*1000 + i
				if _, err := db.Exec(fmt.Sprintf(
					`INSERT INTO users VALUES (%d, 'churn-%d', 'user', 'transient row')`, id, id)); err != nil {
					errc <- err
					return
				}
				if i%2 == 0 {
					if _, err := db.Exec(fmt.Sprintf(`DELETE FROM users WHERE id = %d`, id)); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	// Readers: snapshot mid-churn and analyze the snapshot through
	// the shared (warm, constantly invalidated) checker. The snapshot
	// freezes (table id, version), so whatever mix of cached and
	// fresh profiles the engine uses must equal a cold profile of the
	// same rows.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < checksPerR; i++ {
				snap := db.Snapshot()
				reports, err := checker.CheckWorkloads(context.Background(),
					[]Workload{{SQL: raceWorkloadSQL, DB: snap, NoReportCache: true}})
				if err != nil {
					errc <- err
					return
				}
				raw, err := json.Marshal(reports[0])
				if err != nil {
					errc <- err
					return
				}
				mu.Lock()
				seen = append(seen, observed{snap: snap, report: raw})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Cold-baseline equality: every mid-churn, cache-assisted report
	// must match a completely cold checker (fresh caches, nothing
	// memoized) analyzing the same visible rows.
	if len(seen) != readers*checksPerR {
		t.Fatalf("observed %d snapshots, want %d", len(seen), readers*checksPerR)
	}
	for i, obs := range seen {
		cold := New(Options{Concurrency: 4})
		quiesced := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, obs.snap)})
		if string(obs.report) != string(quiesced) {
			t.Fatalf("snapshot %d: cache-assisted report differs from cold-profiled baseline\nwarm: %s\ncold: %s",
				i, obs.report, quiesced)
		}
	}

	// The cache did real work: versions churned (misses) and repeat
	// content was served from memory (hits).
	pc := checker.Metrics().ProfileCache
	if pc.Hits == 0 || pc.Misses == 0 {
		t.Errorf("expected both hits and misses under churn, got %+v", pc)
	}

	// Quiesced warm check: one more registry-resolved analysis now
	// that writers stopped must serve from the cache on the second
	// run and still match its own cold baseline byte for byte.
	preHits := checker.Metrics().ProfileCache.Hits
	first := reportJSON(t, checker, workload)
	second := reportJSON(t, checker, workload)
	if string(first) != string(second) {
		t.Fatal("quiesced repeat reports differ")
	}
	if checker.Metrics().ProfileCache.Hits == preHits {
		t.Error("quiesced repeat did not hit the profile cache")
	}
	cold := New(Options{Concurrency: 4})
	coldFinal := reportJSON(t, cold, Workload{SQL: raceWorkloadSQL, DB: materialize(t, db.Snapshot())})
	if string(second) != string(coldFinal) {
		t.Fatalf("quiesced warm report differs from cold checker\nwarm: %s\ncold: %s", second, coldFinal)
	}
	_ = baseline // warmed the cache; correctness is pinned against cold baselines above
}
