// GlobaLeaks case study (paper §2.1): build the multi-valued-attribute
// design on the embedded engine, let sqlcheck detect it from the live
// data, apply the suggested intersection-table fix, and measure the
// speedup on the paper's Task #1.
//
//	go run ./examples/globaleaks
package main

import (
	"fmt"
	"log"
	"time"

	"sqlcheck"
)

func main() {
	// 1. The anti-pattern design of Figure 1: Tenants stores users as
	//    a comma-separated list.
	db := sqlcheck.NewDatabase("globaleaks")
	db.MustExec(`CREATE TABLE Users (
		User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(30), Role VARCHAR(5))`)
	db.MustExec(`CREATE TABLE Tenants (
		Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(10), User_IDs TEXT)`)

	const tenants, perTenant = 3000, 3
	for u := 0; u < tenants*perTenant; u++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO Users (User_ID, Name, Role) VALUES ('U%d', 'Name%d', 'R%d')",
			u, u, u%3+1))
	}
	for t := 0; t < tenants; t++ {
		list := fmt.Sprintf("U%d,U%d,U%d", t*3, t*3+1, t*3+2)
		db.MustExec(fmt.Sprintf(
			"INSERT INTO Tenants (Tenant_ID, Zone_ID, User_IDs) VALUES ('T%d', 'Z%d', '%s')",
			t, t%40, list))
	}

	// 2. Detect: the workload pattern-matches the list column, and the
	//    data profile confirms delimiter-separated values.
	workload := `SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U42[[:>:]]'`
	report, err := sqlcheck.New().CheckApplication(workload, db)
	if err != nil {
		log.Fatal(err)
	}
	mva := report.ByRule("multi-valued-attribute")
	if len(mva) == 0 {
		log.Fatal("expected the multi-valued attribute AP to be detected")
	}
	fmt.Println("detected:", mva[0].Message)
	fmt.Println()

	// 3. Measure Task #1 on the AP design.
	apTime := timeQuery(db, workload)

	// 4. Apply the fix: intersection table (Figure 2). The suggested
	//    DDL comes from the fix engine; the data migration below is
	//    the manual step its guidance describes.
	var fixStmts []string
	for _, f := range mva {
		if len(f.Fix.NewStatements) > 0 {
			fixStmts = f.Fix.NewStatements
			fmt.Println("suggested fix:")
			for _, s := range fixStmts {
				fmt.Println("   ", s)
			}
			fmt.Println("   note:", f.Fix.Guidance)
			break
		}
	}
	fmt.Println()

	fixed := sqlcheck.NewDatabase("globaleaks-fixed")
	fixed.MustExec(`CREATE TABLE Users (
		User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(30), Role VARCHAR(5))`)
	fixed.MustExec(`CREATE TABLE Tenants (
		Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(10))`)
	fixed.MustExec(`CREATE TABLE Hosting (
		User_ID VARCHAR(10) REFERENCES Users(User_ID),
		Tenant_ID VARCHAR(10) REFERENCES Tenants(Tenant_ID),
		PRIMARY KEY (User_ID, Tenant_ID))`)
	fixed.MustExec("CREATE INDEX idx_hosting_user ON Hosting (User_ID)")
	for u := 0; u < tenants*perTenant; u++ {
		fixed.MustExec(fmt.Sprintf(
			"INSERT INTO Users (User_ID, Name, Role) VALUES ('U%d', 'Name%d', 'R%d')", u, u, u%3+1))
	}
	for t := 0; t < tenants; t++ {
		fixed.MustExec(fmt.Sprintf(
			"INSERT INTO Tenants (Tenant_ID, Zone_ID) VALUES ('T%d', 'Z%d')", t, t%40))
		for k := 0; k < perTenant; k++ {
			fixed.MustExec(fmt.Sprintf(
				"INSERT INTO Hosting (User_ID, Tenant_ID) VALUES ('U%d', 'T%d')", t*3+k, t))
		}
	}
	fixedQuery := `SELECT T.* FROM Hosting AS H JOIN Tenants AS T ON H.Tenant_ID = T.Tenant_ID WHERE H.User_ID = 'U42'`
	fixTime := timeQuery(fixed, fixedQuery)

	fmt.Printf("Task #1 on the AP design:    %v\n", apTime)
	fmt.Printf("Task #1 on the fixed design: %v\n", fixTime)
	fmt.Printf("speedup: %.0fx (the paper reports 636x at PostgreSQL scale)\n",
		float64(apTime)/float64(fixTime))
}

func timeQuery(db *sqlcheck.Database, sql string) time.Duration {
	if _, err := db.Exec(sql); err != nil { // warm up + validate
		log.Fatalf("%s: %v", sql, err)
	}
	const runs = 10
	start := time.Now()
	for i := 0; i < runs; i++ {
		db.MustExec(sql)
	}
	return time.Since(start) / runs
}
