// Quickstart: detect, rank, and print fixes for anti-patterns in a
// small SQL script.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqlcheck"
)

const appSQL = `
CREATE TABLE Tenant (
    Tenant_ID INTEGER PRIMARY KEY,
    Zone_ID VARCHAR(30) NOT NULL,
    Active BOOLEAN,
    User_IDs TEXT
);

CREATE TABLE Questionnaire (
    Questionnaire_ID INTEGER PRIMARY KEY,
    Tenant_ID INTEGER,
    Name VARCHAR(30),
    Editable BOOLEAN
);

SELECT q.Name, q.Editable, t.Active
FROM Questionnaire q JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID
WHERE q.Editable = TRUE;

SELECT * FROM Tenant WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]';

INSERT INTO Tenant VALUES (7, 'Z1', TRUE, 'U1,U2');
`

func main() {
	report, err := sqlcheck.New().CheckSQL(appSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d statements, found %d anti-patterns\n\n",
		report.Statements, len(report.Findings))
	for i, f := range report.Findings {
		fmt.Printf("%d. [%s] %s (score %.3f, confidence %.2f)\n",
			i+1, f.Category, f.Name, f.Score, f.Confidence)
		fmt.Printf("   %s\n", f.Message)
		for _, rw := range f.Fix.Rewrites {
			fmt.Printf("   rewrite: %s\n", rw.Fixed)
		}
		for _, st := range f.Fix.NewStatements {
			fmt.Printf("   run:     %s\n", st)
		}
		if f.Fix.Guidance != "" {
			fmt.Printf("   note:    %s\n", f.Fix.Guidance)
		}
		fmt.Println()
	}
}
