// Index advisor (paper Example 5 and Figures 8a-8c): workload-aware
// index diagnosis. The same physical design is healthy or pathological
// depending on the queries — sqlcheck flags unused and redundant
// indexes under one workload and missing indexes under another, while
// data analysis suppresses the low-cardinality false positive.
//
//	go run ./examples/index_advisor
package main

import (
	"fmt"
	"log"

	"sqlcheck"
)

const ddl = `
CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY, Zone_ID VARCHAR(30), Active BOOLEAN);
CREATE INDEX idx_zone_actv ON Tenant (Zone_ID, Active);
CREATE INDEX idx_zone ON Tenant (Zone_ID);
CREATE INDEX idx_actv ON Tenant (Active);
`

// Workload 1 (paper Example 5): queries hit the primary key and the
// composite index, so the single-column indexes are dead weight.
const workload1 = ddl + `
SELECT Tenant_ID FROM Tenant WHERE Zone_ID = 'Z1' AND Active = 'True';
SELECT Tenant_ID FROM Tenant WHERE Tenant_ID = 'T1' AND Active = 'True';
`

// Workload 2: no index covers the filtered column at all.
const workload2 = `
CREATE TABLE Activity (Activity_ID INTEGER PRIMARY KEY, Actor VARCHAR(30), Verb VARCHAR(20));
SELECT Activity_ID FROM Activity WHERE Actor = 'a1';
SELECT Verb FROM Activity WHERE Actor = 'a2';
`

func main() {
	checker := sqlcheck.New()

	fmt.Println("=== workload 1: over-indexed table ===")
	report, err := checker.CheckSQL(workload1)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.ByRule("index-overuse") {
		fmt.Printf("  %s\n", f.Message)
		for _, s := range f.Fix.NewStatements {
			fmt.Printf("    fix: %s\n", s)
		}
	}

	fmt.Println("\n=== workload 2: missing index ===")
	report, err = checker.CheckSQL(workload2)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.ByRule("index-underuse") {
		fmt.Printf("  %s\n", f.Message)
		for _, s := range f.Fix.NewStatements {
			fmt.Printf("    fix: %s\n", s)
		}
	}

	// Low-cardinality refinement (Figure 8c): with live data showing
	// the filtered column holds two values, the index suggestion is
	// withdrawn.
	fmt.Println("\n=== workload 2 with data analysis: low-cardinality column ===")
	db := sqlcheck.NewDatabase("activity")
	db.MustExec("CREATE TABLE Activity (Activity_ID INTEGER PRIMARY KEY, Actor VARCHAR(30), Verb VARCHAR(20))")
	for i := 0; i < 200; i++ {
		actor := "a1"
		if i%2 == 0 {
			actor = "a2"
		}
		db.MustExec(fmt.Sprintf(
			"INSERT INTO Activity (Activity_ID, Actor, Verb) VALUES (%d, '%s', 'v%d')", i, actor, i%7))
	}
	report, err = checker.CheckApplication(`
		SELECT Activity_ID FROM Activity WHERE Actor = 'a1';
		SELECT Verb FROM Activity WHERE Actor = 'a2';
	`, db)
	if err != nil {
		log.Fatal(err)
	}
	if report.Has("index-underuse") {
		fmt.Println("  index still suggested (unexpected)")
	} else {
		fmt.Println("  suggestion withdrawn: the data profile shows 2 distinct actors —")
		fmt.Println("  an index would be slower than the sequential scan (paper Figure 8c)")
	}
}
