// Webapp audit (paper §8.4): run sqlcheck over an ORM-shaped web
// application workload, compare the read-heavy (C1) and hybrid (C2)
// ranking configurations, and show which statements a maintainer
// should look at first.
//
//	go run ./examples/webapp_audit
package main

import (
	"fmt"
	"log"

	"sqlcheck"
)

// A condensed Django-style application: migrations plus queries logged
// from integration tests.
const workload = `
CREATE TABLE shop_product (
    id INT PRIMARY KEY,
    title VARCHAR(255),
    price FLOAT,
    sku VARCHAR(64),
    category VARCHAR(64),
    visibility ENUM('visible','hidden','searchable')
);
CREATE INDEX shop_product_sku_cat ON shop_product (sku, category);
CREATE INDEX shop_product_sku ON shop_product (sku);

CREATE TABLE shop_order (
    id INT PRIMARY KEY,
    user_id INT,
    created TIMESTAMP,
    status VARCHAR(16)
);

CREATE TABLE auth_user (
    id INT PRIMARY KEY,
    username VARCHAR(150),
    password VARCHAR(128)
);

SELECT * FROM shop_product WHERE sku = 'SKU-1' AND category = 'bikes';
SELECT * FROM shop_product WHERE title LIKE '%gravel%';
SELECT id FROM shop_order WHERE status = 'paid';
SELECT id FROM shop_order WHERE status = 'refunded';
SELECT o.id FROM shop_order o JOIN auth_user u ON u.id = o.user_id WHERE u.username = 'ada';
INSERT INTO shop_order VALUES (1, 1, '2020-06-01 10:00:00', 'new');
SELECT id FROM shop_product ORDER BY RAND() LIMIT 4;
`

func main() {
	for _, cfg := range []struct {
		name    string
		weights sqlcheck.WeightProfile
	}{
		{"C1 read-heavy (analytics)", sqlcheck.ReadHeavy},
		{"C2 hybrid (transactional)", sqlcheck.Hybrid},
	} {
		report, err := sqlcheck.New(sqlcheck.Options{Weights: cfg.weights}).CheckSQL(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== ranking under %s ===\n", cfg.name)
		top := report.Findings
		if len(top) > 6 {
			top = top[:6]
		}
		for i, f := range top {
			fmt.Printf("%d. %-24s score %.3f  %s\n", i+1, f.Rule, f.Score, f.Message)
		}
		fmt.Println()
	}

	// The inter-query component: which statements deserve attention
	// first.
	report, err := sqlcheck.New().CheckSQL(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== statements by total impact ===")
	for _, q := range report.Queries {
		if q.Query < 0 {
			fmt.Printf("   schema-level: %d finding(s), score %.3f\n", q.Count, q.TotalScore)
			continue
		}
		sql := q.SQL
		if len(sql) > 68 {
			sql = sql[:65] + "..."
		}
		fmt.Printf("   stmt %2d (%d finding(s), score %.3f): %s\n", q.Query+1, q.Count, q.TotalScore, sql)
	}
}
