// Repair: show the query repair engine's automatic rewrites (paper §6)
// — implicit columns, SELECT * expansion, NULL-safe concatenation, and
// the DISTINCT-over-JOIN to EXISTS transformation.
//
//	go run ./examples/repair
package main

import (
	"fmt"
	"log"

	"sqlcheck"
)

const script = `
CREATE TABLE users (user_id INT PRIMARY KEY, first VARCHAR(40) NOT NULL, middle VARCHAR(40), last VARCHAR(40) NOT NULL);
CREATE TABLE orders (order_id INT PRIMARY KEY, user_id INT REFERENCES users(user_id), total NUMERIC(10,2));

INSERT INTO users VALUES (1, 'Ada', NULL, 'Lovelace');
SELECT * FROM users WHERE user_id = 1;
SELECT first || ' ' || middle || ' ' || last FROM users;
SELECT DISTINCT u.first FROM users u JOIN orders o ON o.user_id = u.user_id;
`

func main() {
	report, err := sqlcheck.New().CheckSQL(script)
	if err != nil {
		log.Fatal(err)
	}
	rewrites := 0
	for _, f := range report.Findings {
		for _, rw := range f.Fix.Rewrites {
			rewrites++
			fmt.Printf("[%s]\n  before: %s\n  after:  %s\n\n", f.Rule, compact(rw.Original), rw.Fixed)
		}
	}
	fmt.Printf("%d automatic rewrites out of %d findings; the rest carry textual guidance:\n\n", rewrites, len(report.Findings))
	for _, f := range report.Findings {
		if len(f.Fix.Rewrites) == 0 && f.Fix.Guidance != "" {
			fmt.Printf("[%s] %s\n", f.Rule, f.Fix.Guidance)
		}
	}
}

func compact(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' {
			c = ' '
		}
		if c == ' ' {
			if space {
				continue
			}
			space = true
		} else {
			space = false
		}
		out = append(out, c)
	}
	return string(out)
}
