// Data profiling (paper §8.4, Kaggle experiment): run sqlcheck's data
// rules against a live database with no query workload at all. The
// data analyzer samples each table and flags numbers stored as text,
// timestamps without zones, derived columns, constant columns, and
// comma-separated lists.
//
//	go run ./examples/data_profiling
package main

import (
	"fmt"
	"log"

	"sqlcheck"
)

func main() {
	db := sqlcheck.NewDatabase("survey-dataset")
	db.MustExec(`CREATE TABLE responses (
		response_id INT PRIMARY KEY,
		submitted   TIMESTAMP,
		age_text    TEXT,
		locale      VARCHAR(8),
		topics      TEXT,
		birth_year  INT,
		age         INT,
		rating      INT
	)`)
	for i := 0; i < 150; i++ {
		year := 1950 + i%50
		db.MustExec(fmt.Sprintf(`INSERT INTO responses
			(response_id, submitted, age_text, locale, topics, birth_year, age, rating)
			VALUES (%d, '2020-03-%02d 12:%02d:00', '%d', 'en-us', 'go,sql,db', %d, %d, %d)`,
			i, i%28+1, i%60, 20+i%50, year, 2020-year, i%5+1))
	}

	report, err := sqlcheck.New().CheckApplication("", db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data analysis found %d issue(s) without seeing a single query:\n\n", len(report.Findings))
	for _, f := range report.Findings {
		fmt.Printf("  [%-24s] %s\n", f.Rule, f.Message)
		if len(f.Fix.NewStatements) > 0 {
			fmt.Printf("  %26s fix: %s\n", "", f.Fix.NewStatements[0])
		}
	}
}
